//! Deterministic soak: seeded clients drive a mixed request blend through
//! an in-process server and every response is independently
//! sweep-validated client-side. Accounting invariants (queue bound,
//! deadline bookkeeping, workspace-reuse counters) are checked against
//! the server's own stats at the end.
//!
//! CI re-runs this binary under `PRFPGA_THREADS=2` and
//! `PRFPGA_SOLVE_COMMIT=0`; the config below honors both seams via
//! `ServerConfig::default`.

mod common;

use common::{expect_ok, fetch_stats, gen_request, quiet_config, repair_request, roundtrip, start};
use prfpga_gen::{EventConfig, EventTraceGenerator};
use prfpga_model::service::AlgoChoice;
use prfpga_sched::{PaScheduler, RepairConfig, RepairEngine};
use prfpga_server::ServerConfig;
use prfpga_sim::validate_schedule_sweep;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: u64 = 10;

/// The request blend, rotating per (client, index).
fn blend(c: usize, i: u64) -> (AlgoChoice, Option<u64>) {
    match (c as u64 + i) % 5 {
        0 => (AlgoChoice::Pa, None),
        1 => (AlgoChoice::Par, Some(40)),
        2 => (AlgoChoice::IsK(5), None),
        3 => (AlgoChoice::Portfolio, Some(40)),
        _ => (AlgoChoice::Repair, Some(40)),
    }
}

#[test]
fn mixed_traffic_soak_validates_every_response_and_the_accounting() {
    let config = ServerConfig {
        queue_bound: 16,
        prewarm_tasks: 24,
        ..ServerConfig::default()
    };
    let workers = config.workers.min(2);
    let config = ServerConfig { workers, ..config };
    let queue_bound = config.queue_bound as u64;
    let (connector, handle) = start(config);

    let mut control = connector.connect().expect("control connect");
    let before = fetch_stats(&mut control, 1);
    assert_eq!(
        before.workspace_reuses, 0,
        "prewarm runs stay out of the metrics"
    );
    assert_eq!(before.completed, 0);

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| connector.connect().expect("client connect"))
        .collect();

    // (deadline declared & met, declared & missed, first/last pinned
    // schedule bytes from client 0).
    let mut tallies = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(c, mut client)| {
                scope.spawn(move || {
                    let mut met = 0u64;
                    let mut missed = 0u64;
                    let mut pinned: Option<(String, String)> = None;
                    for i in 0..REQUESTS_PER_CLIENT {
                        let (algo, budget) = blend(c, i);
                        let tasks = 12 + 4 * ((c as u64 * 3 + i) % 4) as usize;
                        let seed = 0xA11CE + (c as u64 + 2 * i) % 8;
                        let deadline = (i % 3 == 0).then_some(10_000u64);
                        let id = c as u64 * 1000 + i;
                        let line = match algo {
                            AlgoChoice::Repair => repair_request(id, tasks, seed, budget, vec![]),
                            algo => gen_request(id, algo, tasks, seed, deadline, budget),
                        };
                        let reply = expect_ok(roundtrip(&mut client, &line));
                        assert_eq!(reply.id, id, "client {c}: response correlation");
                        assert_eq!(
                            reply.makespan,
                            reply.schedule.makespan(),
                            "client {c} req {i}: advertised makespan"
                        );

                        // Independent validation: regenerate the instance
                        // the named profile denotes and sweep the schedule.
                        let inst = prfpga_gen::service_instance(tasks, seed, None, 2)
                            .expect("profile regenerates");
                        validate_schedule_sweep(&inst, &reply.schedule).unwrap_or_else(|e| {
                            panic!("client {c} req {i} ({algo:?}): invalid schedule: {e:?}")
                        });

                        // Repair requests declared no deadline in this mix.
                        if deadline.is_some() && algo != AlgoChoice::Repair {
                            if reply.deadline_met {
                                met += 1;
                            } else {
                                missed += 1;
                            }
                        }

                        // Client 0 pins its first request and replays it at
                        // the end: the warm pool must answer byte-identically.
                        if c == 0 && i == 0 {
                            pinned = Some((line.clone(), schedule_bytes(&reply)));
                        }
                    }
                    if let Some((line, first)) = &pinned {
                        let replay = expect_ok(roundtrip(&mut client, line));
                        assert_eq!(
                            &schedule_bytes(&replay),
                            first,
                            "warm-pool replay diverged from the first answer"
                        );
                        // The replayed line declares the same deadline as
                        // the original; keep the tally in sync with the
                        // server's accounting.
                        if replay.deadline_met {
                            met += 1;
                        } else {
                            missed += 1;
                        }
                    }
                    (met, missed, pinned.is_some() as u64)
                })
            })
            .collect();
        for h in handles {
            tallies.push(h.join().expect("client thread"));
        }
    });

    let after = fetch_stats(&mut control, 2);
    drop(control);
    let stats = handle.stop();

    let replays: u64 = tallies.iter().map(|t| t.2).sum();
    let scheduled = CLIENTS as u64 * REQUESTS_PER_CLIENT + replays;
    assert_eq!(stats.admitted, scheduled, "all requests admitted");
    assert_eq!(stats.completed, scheduled, "all requests answered");
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.rejected_queue_full, 0);
    assert_eq!(stats.rejected_unmeetable, 0);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.queue_depth, 0, "queue drained");
    assert!(
        stats.queue_peak <= queue_bound,
        "queue depth {} beyond its bound {queue_bound}",
        stats.queue_peak
    );

    // Deadline bookkeeping must match the per-response flags the clients
    // saw (the metric is fed with exactly the `deadline_met` value).
    let met: u64 = tallies.iter().map(|t| t.0).sum();
    let missed: u64 = tallies.iter().map(|t| t.1).sum();
    assert_eq!(stats.deadline_met, met, "deadline-met accounting");
    assert_eq!(stats.deadline_missed, missed, "deadline-missed accounting");

    // The warm pool was exercised: reuse counters strictly increased
    // over the soak and never moved backwards.
    assert!(
        after.workspace_reuses > 0,
        "no workspace reuse during the soak"
    );
    assert!(
        stats.workspace_reuses + stats.workspace_rebuilds
            >= after.workspace_reuses + after.workspace_rebuilds,
        "reuse counters regressed"
    );
    assert!(
        stats.workspace_reuses + stats.workspace_rebuilds
            > before.workspace_reuses + before.workspace_rebuilds,
        "reuse counters never moved"
    );
}

fn schedule_bytes(reply: &prfpga_model::service::ScheduleReply) -> String {
    serde_json::to_string(&reply.schedule).expect("schedules serialize")
}

/// Service-level regression for the workspace staleness hazard: repair
/// requests for two different instances interleaved on ONE worker must
/// answer byte-identically to dedicated servers that each saw a single
/// instance — and to a local replay of the same repair, engine and all.
#[test]
fn interleaved_repairs_on_one_worker_match_dedicated_servers() {
    let base = ServerConfig {
        prewarm_tasks: 16,
        ..quiet_config(1)
    };

    let spec_a = (20usize, 11u64);
    let spec_b = (24usize, 12u64);
    let events_for = |(tasks, seed): (usize, u64), trace_seed: u64| {
        let inst = prfpga_gen::service_instance(tasks, seed, None, 2).expect("generate");
        let baseline = PaScheduler::new(base.sched.clone())
            .schedule(&inst)
            .expect("baseline");
        let events = EventTraceGenerator::new(trace_seed)
            .generate(&inst, &baseline, &EventConfig::on_time(5))
            .events;
        (inst, baseline, events)
    };
    let (inst_a, baseline_a, events_a) = events_for(spec_a, 77);
    let (inst_b, baseline_b, events_b) = events_for(spec_b, 78);

    // Interleave A and B repairs over one shared, warm worker.
    let (connector, handle) = start(base.clone());
    let mut client = connector.connect().expect("connect");
    let mut answers_a = Vec::new();
    let mut answers_b = Vec::new();
    for round in 0..3u64 {
        let ra = expect_ok(roundtrip(
            &mut client,
            &repair_request(round * 2, spec_a.0, spec_a.1, None, events_a.clone()),
        ));
        answers_a.push(schedule_bytes(&ra));
        let rb = expect_ok(roundtrip(
            &mut client,
            &repair_request(round * 2 + 1, spec_b.0, spec_b.1, None, events_b.clone()),
        ));
        answers_b.push(schedule_bytes(&rb));
    }
    drop(client);
    handle.stop();

    assert!(
        answers_a.iter().all(|a| a == &answers_a[0]),
        "instance A answers drifted across interleaved rounds"
    );
    assert!(
        answers_b.iter().all(|b| b == &answers_b[0]),
        "instance B answers drifted across interleaved rounds"
    );

    // Dedicated single-instance servers must agree with the shared one.
    for (spec, events, expected) in [
        (spec_a, &events_a, &answers_a[0]),
        (spec_b, &events_b, &answers_b[0]),
    ] {
        let (connector, handle) = start(base.clone());
        let mut client = connector.connect().expect("connect");
        let reply = expect_ok(roundtrip(
            &mut client,
            &repair_request(9, spec.0, spec.1, None, events.clone()),
        ));
        assert_eq!(
            &schedule_bytes(&reply),
            expected,
            "dedicated server disagrees with the interleaved worker"
        );
        drop(client);
        handle.stop();
    }

    // Differential replay: the same repair run locally, against the same
    // baseline and config, must reproduce the served schedule — and the
    // result must sweep-validate against the engine's revised instance.
    for (inst, baseline, events, expected) in [
        (inst_a, baseline_a, &events_a, &answers_a[0]),
        (inst_b, baseline_b, &events_b, &answers_b[0]),
    ] {
        let mut engine = RepairEngine::new(
            inst,
            baseline,
            RepairConfig {
                sched: base.sched.clone(),
                ..Default::default()
            },
        )
        .expect("engine");
        engine.apply_all(events).expect("repair applies");
        assert_eq!(
            &serde_json::to_string(engine.schedule()).unwrap(),
            expected,
            "local repair replay disagrees with the server"
        );
        validate_schedule_sweep(engine.instance(), engine.schedule())
            .expect("repaired schedule sweeps clean");
    }
}
