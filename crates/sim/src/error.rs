//! Validation error taxonomy.

use std::fmt;

use prfpga_model::{RegionId, TaskId};

/// A specific constraint violation found by [`validate_schedule`].
///
/// [`validate_schedule`]: crate::validate_schedule
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The schedule does not carry exactly one assignment per task.
    AssignmentCountMismatch {
        /// Tasks in the instance.
        expected: usize,
        /// Assignments in the schedule.
        actual: usize,
    },
    /// A task uses an implementation not in its implementation set.
    ImplNotAvailable {
        /// Offending task.
        task: TaskId,
    },
    /// A software implementation was placed in a region, or a hardware
    /// implementation on a core.
    PlacementKindMismatch {
        /// Offending task.
        task: TaskId,
    },
    /// A core index is out of range.
    CoreOutOfRange {
        /// Offending task.
        task: TaskId,
        /// The referenced core.
        core: usize,
    },
    /// A region index is out of range.
    RegionOutOfRange {
        /// Offending task.
        task: TaskId,
    },
    /// `end - start` does not equal the implementation execution time.
    DurationMismatch {
        /// Offending task.
        task: TaskId,
    },
    /// A hardware task does not fit the region it was placed in.
    RegionTooSmall {
        /// Offending task.
        task: TaskId,
        /// Its region.
        region: RegionId,
    },
    /// The regions together exceed the device capacity.
    DeviceOverCapacity,
    /// A region names a fabric the platform does not have.
    FabricOutOfRange {
        /// Offending region.
        region: RegionId,
    },
    /// The regions hosted on one fabric exceed that fabric's capacity.
    FabricOverCapacity {
        /// Overcommitted fabric.
        fabric: u32,
    },
    /// A dependency is violated: the consumer starts before the producer
    /// ends.
    PrecedenceViolated {
        /// Producer task.
        from: TaskId,
        /// Consumer task.
        to: TaskId,
    },
    /// Two tasks overlap on the same processor core.
    CoreOverlap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
        /// The shared core.
        core: usize,
    },
    /// Two tasks overlap in the same reconfigurable region.
    RegionOverlap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
        /// The shared region.
        region: RegionId,
    },
    /// Two reconfigurations overlap on the single reconfiguration
    /// controller.
    ReconfiguratorContention,
    /// A reconfiguration overlaps a task executing in its target region.
    ReconfigurationDuringExecution {
        /// The region where the clash happens.
        region: RegionId,
    },
    /// Consecutive tasks with different implementations in a region have no
    /// reconfiguration between them.
    MissingReconfiguration {
        /// Task whose bitstream was never loaded.
        task: TaskId,
        /// Its region.
        region: RegionId,
    },
    /// A reconfiguration's duration does not match the region bitstream
    /// size over the controller throughput (eq. 2).
    ReconfigurationDurationMismatch {
        /// Target region of the offending reconfiguration.
        region: RegionId,
    },
    /// A reconfiguration references a task/region pair inconsistent with
    /// the assignments (wrong region, wrong implementation, or completes
    /// after its outgoing task starts).
    DanglingReconfiguration {
        /// The outgoing task named by the reconfiguration.
        task: TaskId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidationError::*;
        match self {
            AssignmentCountMismatch { expected, actual } => {
                write!(f, "expected {expected} assignments, found {actual}")
            }
            ImplNotAvailable { task } => {
                write!(f, "task {} uses an implementation outside its set", task.0)
            }
            PlacementKindMismatch { task } => write!(
                f,
                "task {} placement is inconsistent with its implementation kind",
                task.0
            ),
            CoreOutOfRange { task, core } => {
                write!(f, "task {} mapped to nonexistent core {core}", task.0)
            }
            RegionOutOfRange { task } => {
                write!(f, "task {} mapped to nonexistent region", task.0)
            }
            DurationMismatch { task } => {
                write!(
                    f,
                    "task {} slot length differs from its execution time",
                    task.0
                )
            }
            RegionTooSmall { task, region } => {
                write!(f, "task {} does not fit in region {}", task.0, region.0)
            }
            DeviceOverCapacity => write!(f, "regions exceed device capacity"),
            FabricOutOfRange { region } => {
                write!(f, "region {} names a nonexistent fabric", region.0)
            }
            FabricOverCapacity { fabric } => {
                write!(f, "regions exceed the capacity of fabric {fabric}")
            }
            PrecedenceViolated { from, to } => {
                write!(
                    f,
                    "task {} starts before its producer {} ends",
                    to.0, from.0
                )
            }
            CoreOverlap { a, b, core } => {
                write!(f, "tasks {} and {} overlap on core {core}", a.0, b.0)
            }
            RegionOverlap { a, b, region } => write!(
                f,
                "tasks {} and {} overlap in region {}",
                a.0, b.0, region.0
            ),
            ReconfiguratorContention => {
                write!(f, "two reconfigurations overlap on the controller")
            }
            ReconfigurationDuringExecution { region } => write!(
                f,
                "a reconfiguration of region {} overlaps a task executing there",
                region.0
            ),
            MissingReconfiguration { task, region } => write!(
                f,
                "no reconfiguration loads task {} into region {}",
                task.0, region.0
            ),
            ReconfigurationDurationMismatch { region } => write!(
                f,
                "reconfiguration of region {} has wrong duration",
                region.0
            ),
            DanglingReconfiguration { task } => write!(
                f,
                "reconfiguration for task {} is inconsistent with the assignments",
                task.0
            ),
        }
    }
}

impl std::error::Error for ValidationError {}
