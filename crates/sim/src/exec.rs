//! Discrete-event ASAP re-execution of a schedule's decisions.
//!
//! [`execute_asap`] strips the *times* off a schedule, keeps its *decisions*
//! (implementation choices, placements, the per-core / per-region / per-ICAP
//! orderings implied by the recorded start times) and replays everything
//! under as-soon-as-possible semantics. The result is the tightest makespan
//! compatible with those decisions:
//!
//! * for a valid schedule, `asap.makespan() <= schedule.makespan()` — the
//!   replay can only remove idle gaps, never add them;
//! * a replay that fails (the implied ordering constraints form a cycle)
//!   proves the schedule inconsistent.

use prfpga_model::{ProblemInstance, Schedule, Time, TimeWindow};
use prfpga_timeline::pack_lanes;

/// Result of an ASAP replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsapResult {
    /// Earliest-start times per task (indexed by task).
    pub task_starts: Vec<Time>,
    /// Earliest-start times per reconfiguration (same order as in the
    /// schedule).
    pub reconf_starts: Vec<Time>,
    /// Achieved makespan.
    pub makespan: Time,
}

/// Replays the schedule's decisions under ASAP semantics.
///
/// Returns `None` when the constraint graph implied by the schedule is
/// cyclic (which cannot happen for a schedule accepted by
/// [`validate_schedule`](crate::validate_schedule)).
pub fn execute_asap(instance: &ProblemInstance, schedule: &Schedule) -> Option<AsapResult> {
    let n_tasks = instance.graph.len();
    let n_recs = schedule.reconfigurations.len();
    let n = n_tasks + n_recs;
    if schedule.assignments.len() != n_tasks {
        return None;
    }

    // Node durations: tasks then reconfigurations.
    let mut dur: Vec<Time> = Vec::with_capacity(n);
    for a in &schedule.assignments {
        dur.push(instance.impls.get(a.impl_id).time);
    }
    for r in &schedule.reconfigurations {
        dur.push(r.duration());
    }

    // Constraint arcs a -> b with lag: start_b >= start_a + dur_a + lag.
    let mut succs: Vec<Vec<(u32, Time)>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];
    let add =
        |succs: &mut Vec<Vec<(u32, Time)>>, indeg: &mut Vec<u32>, a: usize, b: usize, lag: Time| {
            succs[a].push((b as u32, lag));
            indeg[b] += 1;
        };

    // Data dependencies, with communication lag when not co-located.
    for (i, &(from, to)) in instance.graph.edges.iter().enumerate() {
        let pa = &schedule.assignments[from.index()];
        let sa = &schedule.assignments[to.index()];
        let lag = if pa.placement.colocated(sa.placement) {
            0
        } else {
            instance.graph.edge_cost(i)
        };
        add(&mut succs, &mut indeg, from.index(), to.index(), lag);
    }
    // Core sequences.
    for p in 0..instance.architecture.num_processors {
        let seq = schedule.tasks_on_core(p);
        for pair in seq.windows(2) {
            add(&mut succs, &mut indeg, pair[0].index(), pair[1].index(), 0);
        }
    }
    // Region sequences, routed through reconfigurations when present.
    // `rec_for_task[t]` is the reconfiguration whose outgoing task is `t`.
    let mut rec_for_task: Vec<Option<usize>> = vec![None; n_tasks];
    for (ri, r) in schedule.reconfigurations.iter().enumerate() {
        rec_for_task[r.outgoing_task.index()] = Some(ri);
    }
    for s in 0..schedule.regions.len() {
        let seq = schedule.tasks_in_region(prfpga_model::RegionId(s as u32));
        for (i, &t) in seq.iter().enumerate() {
            if let Some(ri) = rec_for_task[t.index()] {
                // predecessor task (if any) -> reconfiguration -> task
                if i > 0 {
                    add(&mut succs, &mut indeg, seq[i - 1].index(), n_tasks + ri, 0);
                }
                add(&mut succs, &mut indeg, n_tasks + ri, t.index(), 0);
            } else if i > 0 {
                add(&mut succs, &mut indeg, seq[i - 1].index(), t.index(), 0);
            }
        }
    }
    // Controller serialization in recorded order: reconfigurations are
    // greedily re-assigned to the architecture's k controllers by start
    // time (with k = 1 this is the plain recorded sequence). The packing
    // rule is `pack_lanes`, shared with the Gantt/SVG renderers so the
    // replay chains exactly the lanes a human sees drawn.
    let k = instance.architecture.num_reconfig_controllers.max(1);
    let rec_windows: Vec<TimeWindow> = schedule
        .reconfigurations
        .iter()
        .map(|r| TimeWindow::new(r.start, r.end))
        .collect();
    let lane_of = pack_lanes(&rec_windows, k);
    let mut rec_order: Vec<usize> = (0..n_recs).collect();
    rec_order.sort_by_key(|&ri| schedule.reconfigurations[ri].start);
    let mut ctrl_last: Vec<Option<usize>> = vec![None; k];
    for &ri in &rec_order {
        let ctrl = lane_of[ri];
        if let Some(prev) = ctrl_last[ctrl] {
            add(&mut succs, &mut indeg, n_tasks + prev, n_tasks + ri, 0);
        }
        ctrl_last[ctrl] = Some(ri);
    }

    // Longest-path relaxation in topological order (Kahn).
    let mut start: Vec<Time> = vec![0; n];
    let mut ready: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = ready.pop() {
        seen += 1;
        let fin = start[v as usize] + dur[v as usize];
        for &(s, lag) in &succs[v as usize] {
            let su = s as usize;
            start[su] = start[su].max(fin + lag);
            indeg[su] -= 1;
            if indeg[su] == 0 {
                ready.push(s);
            }
        }
    }
    if seen != n {
        return None; // cyclic constraints: inconsistent schedule
    }

    let makespan = (0..n).map(|v| start[v] + dur[v]).max().unwrap_or(0);
    Some(AsapResult {
        task_starts: start[..n_tasks].to_vec(),
        reconf_starts: start[n_tasks..].to_vec(),
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, Placement, Reconfiguration, Region,
        RegionId, ResourceVec, TaskAssignment, TaskGraph, TaskId,
    };

    fn fixture_with_gap() -> (ProblemInstance, Schedule) {
        let mut impls = ImplPool::new();
        let a_sw = impls.add(Implementation::software("a_sw", 100));
        let a_hw = impls.add(Implementation::hardware(
            "a_hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let b_sw = impls.add(Implementation::software("b_sw", 100));
        let b_hw = impls.add(Implementation::hardware(
            "b_hw",
            12,
            ResourceVec::new(4, 0, 0),
        ));
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![a_sw, a_hw]);
        let b = g.add_task("b", vec![b_sw, b_hw]);
        g.add_edge(a, b);
        let inst = ProblemInstance::new(
            "fix",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(20, 4, 4), 1)),
            g,
            impls,
        )
        .unwrap();
        // Deliberate idle gap: reconfiguration could start at 10 but starts
        // at 20; task b could start at 25 but starts at 40.
        let schedule = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: a_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: b_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 40,
                    end: 52,
                },
            ],
            reconfigurations: vec![Reconfiguration {
                region: RegionId(0),
                loads_impl: b_hw,
                outgoing_task: b,
                start: 20,
                end: 25,
            }],
        };
        (inst, schedule)
    }

    #[test]
    fn asap_tightens_gaps() {
        let (inst, s) = fixture_with_gap();
        let asap = execute_asap(&inst, &s).unwrap();
        assert_eq!(asap.task_starts, vec![0, 15]); // 10 exec + 5 reconf
        assert_eq!(asap.reconf_starts, vec![10]);
        assert_eq!(asap.makespan, 27);
        assert!(asap.makespan <= s.makespan());
    }

    #[test]
    fn asap_never_beats_dependencies() {
        let (inst, s) = fixture_with_gap();
        let asap = execute_asap(&inst, &s).unwrap();
        for &(from, to) in &inst.graph.edges {
            let f_end = asap.task_starts[from.index()]
                + inst.impls.get(s.assignments[from.index()].impl_id).time;
            assert!(asap.task_starts[to.index()] >= f_end);
        }
    }

    #[test]
    fn wrong_assignment_count_is_rejected() {
        let (inst, mut s) = fixture_with_gap();
        s.assignments.pop();
        assert!(execute_asap(&inst, &s).is_none());
    }

    #[test]
    fn empty_schedule_on_empty_graph() {
        let impls = ImplPool::new();
        let g = TaskGraph::new();
        let inst = ProblemInstance::new(
            "empty",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 1, 1), 1)),
            g,
            impls,
        )
        .unwrap();
        let asap = execute_asap(&inst, &Schedule::default()).unwrap();
        assert_eq!(asap.makespan, 0);
        assert!(asap.task_starts.is_empty());
        let _ = TaskId(0); // silence import on some cfgs
    }
}
