//! ASCII Gantt rendering of schedules.
//!
//! One row per processor core, per reconfigurable region and per
//! reconfiguration controller (ICAP); reconfigurations are packed onto the
//! controller rows with the same [`pack_lanes`] rule the ASAP replay uses
//! to chain them. On a multi-fabric platform the region and controller
//! rows are grouped under a `fabric <n>:` header per fabric, each fabric
//! with its own controller group; single-fabric output is unchanged.
//! Intended for examples, the CLI and debugging — not a stable machine
//! format.

use std::fmt::Write as _;

use prfpga_model::{Placement, ProblemInstance, RegionId, Schedule, Time, TimeWindow};
use prfpga_timeline::pack_lanes;

/// Renders a schedule as a fixed-width ASCII Gantt chart, `width` columns
/// of timeline (plus labels). Task slots are drawn with the task id,
/// reconfiguration slots with `#`.
pub fn render_gantt(instance: &ProblemInstance, schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let makespan = schedule.makespan().max(1);
    let scale = |t: Time| -> usize { ((t as u128 * width as u128) / makespan as u128) as usize };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule \"{}\": makespan {} ticks, {} regions, {} reconfigurations",
        instance.name,
        schedule.makespan(),
        schedule.regions.len(),
        schedule.reconfigurations.len()
    );

    // Cores.
    for p in 0..instance.architecture.num_processors {
        let mut row = vec![b'.'; width];
        for t in schedule.tasks_on_core(p) {
            let a = schedule.assignment(t);
            paint(&mut row, scale(a.start), scale(a.end), label_char(t.0));
        }
        let _ = writeln!(out, "core {p:>2} |{}|", String::from_utf8_lossy(&row));
    }

    // Regions and controllers, grouped by fabric: each fabric's regions
    // (index order) followed by its own group of k controller rows. A
    // single fabric prints no headers and degenerates to the original
    // all-regions-then-all-controllers layout.
    let k = instance.architecture.num_reconfig_controllers.max(1);
    let nf = instance
        .architecture
        .num_fabrics()
        .max(schedule.fabric_span() as usize);
    let multi = nf > 1;
    for f in 0..nf {
        if multi {
            let _ = writeln!(out, "fabric {f}:");
        }
        for s in 0..schedule.regions.len() {
            if schedule.regions[s].fabric as usize != f {
                continue;
            }
            let rid = RegionId(s as u32);
            let mut row = vec![b'.'; width];
            for t in schedule.tasks_in_region(rid) {
                let a = schedule.assignment(t);
                paint(&mut row, scale(a.start), scale(a.end), label_char(t.0));
            }
            for r in schedule.reconfigurations.iter().filter(|r| r.region == rid) {
                paint(&mut row, scale(r.start), scale(r.end), b'#');
            }
            let _ = writeln!(
                out,
                "reg {s:>3} |{}| {}",
                String::from_utf8_lossy(&row),
                schedule.regions[s].res
            );
        }

        let idx: Vec<usize> = schedule
            .reconfigurations
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                schedule
                    .regions
                    .get(r.region.index())
                    .map_or(0, |rg| rg.fabric as usize)
                    == f
            })
            .map(|(i, _)| i)
            .collect();
        let rec_windows: Vec<TimeWindow> = idx
            .iter()
            .map(|&i| {
                let r = &schedule.reconfigurations[i];
                TimeWindow::new(r.start, r.end)
            })
            .collect();
        let lane_of = pack_lanes(&rec_windows, k);
        for c in 0..k {
            let mut row = vec![b'.'; width];
            for (j, &i) in idx.iter().enumerate() {
                if lane_of[j] == c {
                    let r = &schedule.reconfigurations[i];
                    paint(&mut row, scale(r.start), scale(r.end), b'#');
                }
            }
            let abs = f * k + c;
            let _ = writeln!(out, "icap {abs:>2} |{}|", String::from_utf8_lossy(&row));
        }
    }

    // Legend: which char is which task (only for small schedules).
    if schedule.assignments.len() <= 36 {
        let _ = write!(out, "legend: ");
        for (i, a) in schedule.assignments.iter().enumerate() {
            let place = match a.placement {
                Placement::Core(p) => format!("core{p}"),
                Placement::Region(r) => format!("reg{}", r.0),
            };
            let _ = write!(
                out,
                "{}={}({}) ",
                label_char(i as u32) as char,
                instance.graph.tasks[i].name,
                place
            );
        }
        let _ = writeln!(out);
    }
    out
}

fn label_char(id: u32) -> u8 {
    const CHARS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    CHARS[(id as usize) % CHARS.len()]
}

fn paint(row: &mut [u8], from: usize, to: usize, ch: u8) {
    let len = row.len();
    let from = from.min(len);
    let to = to.max(from + 1).min(len);
    for cell in &mut row[from..to] {
        *cell = ch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, Region, ResourceVec, TaskAssignment,
        TaskGraph,
    };

    #[test]
    fn renders_rows_for_every_resource() {
        let mut impls = ImplPool::new();
        let sw = impls.add(Implementation::software("sw", 30));
        let hw = impls.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![sw, hw]);
        g.add_task("b", vec![sw]);
        let inst = ProblemInstance::new(
            "g",
            Architecture::new(2, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let sched = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: sw,
                    placement: Placement::Core(0),
                    start: 0,
                    end: 30,
                },
            ],
            reconfigurations: vec![],
        };
        let chart = render_gantt(&inst, &sched, 40);
        assert!(chart.contains("core  0"));
        assert!(chart.contains("core  1"));
        assert!(chart.contains("reg   0"));
        assert!(chart.contains("icap"));
        assert!(chart.contains("legend:"));
        // Task 1 occupies the whole core row; task 0 a third of the region.
        assert!(chart.contains('1'));
        assert!(chart.contains('0'));
    }

    #[test]
    fn empty_schedule_renders() {
        let impls = ImplPool::new();
        let g = TaskGraph::new();
        let inst = ProblemInstance::new(
            "e",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let chart = render_gantt(&inst, &Schedule::default(), 20);
        assert!(chart.contains("makespan 0"));
    }
}
