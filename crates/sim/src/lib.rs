//! # prfpga-sim
//!
//! Independent schedule checker for the `prfpga` workspace.
//!
//! The schedulers in `prfpga-sched` and `prfpga-baseline` are non-trivial
//! heuristics; this crate provides the machinery to *distrust* them:
//!
//! * [`validate_schedule`] — a from-first-principles validator that checks
//!   every constraint of §III against a [`Schedule`]: precedence, processor
//!   and region exclusivity, serialization on the single reconfiguration
//!   controller, region capacity, device capacity and reconfiguration
//!   bookkeeping. It shares no code with the schedulers.
//! * [`validate_schedule_sweep`] — the same verdicts via a sweep-line
//!   algorithm (`O(n log n)` instead of re-scanning per lane); the two
//!   implementations act as differential oracles for each other.
//! * [`execute_asap`] — a discrete-event re-execution of the schedule's
//!   *decisions* (implementation choices, placements, intra-resource
//!   orderings) under as-soon-as-possible semantics, returning the achieved
//!   makespan. A valid schedule can never beat its ASAP replay.
//! * [`gantt`] — an ASCII Gantt renderer for humans.
//! * [`stats`] — summary statistics used by the experiment harness.
//!
//! [`Schedule`]: prfpga_model::Schedule

#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod gantt;
pub mod stats;
pub mod svg;
pub mod validate;

pub use error::ValidationError;
pub use exec::execute_asap;
pub use gantt::render_gantt;
pub use stats::{schedule_stats, ScheduleStats};
pub use svg::render_svg;
pub use validate::{validate_schedule, validate_schedule_sweep};
