//! Summary statistics over schedules, used by reports and the experiment
//! harness.

use serde::{Deserialize, Serialize};

use prfpga_model::{Placement, ProblemInstance, Schedule, Time};

/// Aggregate numbers describing one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Overall application execution time.
    pub makespan: Time,
    /// Number of reconfigurable regions defined.
    pub num_regions: usize,
    /// Tasks executed in hardware.
    pub hw_tasks: usize,
    /// Tasks executed in software.
    pub sw_tasks: usize,
    /// Number of reconfiguration tasks.
    pub num_reconfigurations: usize,
    /// Total busy time of the reconfiguration controller.
    pub reconf_busy: Time,
    /// Reconfiguration controller utilization in parts-per-million of the
    /// makespan.
    pub reconf_utilization_ppm: u64,
    /// Busy time summed over all processor cores.
    pub core_busy: Time,
    /// Busy time summed over all regions (execution only).
    pub region_busy: Time,
    /// Fraction (ppm) of device CLBs claimed by regions.
    pub fabric_claimed_ppm: u64,
}

/// Computes [`ScheduleStats`] for a schedule of `instance`.
pub fn schedule_stats(instance: &ProblemInstance, schedule: &Schedule) -> ScheduleStats {
    let makespan = schedule.makespan();
    let mut hw_tasks = 0usize;
    let mut sw_tasks = 0usize;
    let mut core_busy: Time = 0;
    let mut region_busy: Time = 0;
    for a in &schedule.assignments {
        match a.placement {
            Placement::Core(_) => {
                sw_tasks += 1;
                core_busy += a.duration();
            }
            Placement::Region(_) => {
                hw_tasks += 1;
                region_busy += a.duration();
            }
        }
    }
    let reconf_busy = schedule.total_reconfiguration_time();
    let reconf_utilization_ppm = if makespan == 0 {
        0
    } else {
        (reconf_busy as u128 * 1_000_000 / makespan as u128) as u64
    };
    let cap = instance.architecture.device.max_res;
    let claimed = schedule.total_region_resources();
    let fabric_claimed_ppm = if cap.total() == 0 {
        0
    } else {
        (claimed.total() as u128 * 1_000_000 / cap.total() as u128) as u64
    };
    ScheduleStats {
        makespan,
        num_regions: schedule.regions.len(),
        hw_tasks,
        sw_tasks,
        num_reconfigurations: schedule.reconfigurations.len(),
        reconf_busy,
        reconf_utilization_ppm,
        core_busy,
        region_busy,
        fabric_claimed_ppm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, Region, RegionId, ResourceVec,
        TaskAssignment, TaskGraph,
    };

    #[test]
    fn stats_add_up() {
        let mut impls = ImplPool::new();
        let sw = impls.add(Implementation::software("sw", 30));
        let hw = impls.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![sw, hw]);
        g.add_task("b", vec![sw]);
        let inst = ProblemInstance::new(
            "s",
            Architecture::new(2, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let sched = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: sw,
                    placement: Placement::Core(1),
                    start: 0,
                    end: 30,
                },
            ],
            reconfigurations: vec![],
        };
        let st = schedule_stats(&inst, &sched);
        assert_eq!(st.makespan, 30);
        assert_eq!(st.hw_tasks, 1);
        assert_eq!(st.sw_tasks, 1);
        assert_eq!(st.num_regions, 1);
        assert_eq!(st.core_busy, 30);
        assert_eq!(st.region_busy, 10);
        assert_eq!(st.reconf_busy, 0);
        assert_eq!(st.fabric_claimed_ppm, 500_000); // 5 of 10 CLBs
    }

    #[test]
    fn empty_schedule_stats() {
        let impls = ImplPool::new();
        let g = TaskGraph::new();
        let inst = ProblemInstance::new(
            "e",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let st = schedule_stats(&inst, &Schedule::default());
        assert_eq!(st.makespan, 0);
        assert_eq!(st.reconf_utilization_ppm, 0);
    }
}
