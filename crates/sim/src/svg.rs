//! SVG Gantt export.
//!
//! Produces a self-contained SVG document with one lane per processor
//! core, one per reconfigurable region and one per reconfiguration
//! controller (packed with the shared [`pack_lanes`] rule). On a
//! multi-fabric platform the region and controller lanes are grouped by
//! fabric — each fabric's regions followed by its own controller group —
//! with `f<n>`-prefixed labels; single-fabric output is unchanged. Tasks
//! are colored by placement kind, reconfigurations are hatched. No
//! external assets; viewable in any browser.

use std::fmt::Write as _;

use prfpga_model::{ProblemInstance, RegionId, Schedule, Time, TimeWindow};
use prfpga_timeline::pack_lanes;

const LANE_H: u64 = 26;
const LANE_GAP: u64 = 6;
const LABEL_W: u64 = 90;
const CHART_W: u64 = 960;
const TOP: u64 = 30;

/// Renders the schedule as an SVG document.
pub fn render_svg(instance: &ProblemInstance, schedule: &Schedule) -> String {
    let makespan = schedule.makespan().max(1);
    let k = instance.architecture.num_reconfig_controllers.max(1);
    let nf = instance
        .architecture
        .num_fabrics()
        .max(schedule.fabric_span() as usize);
    let multi = nf > 1;
    let lanes = instance.architecture.num_processors + schedule.regions.len() + nf * k;
    let height = TOP + lanes as u64 * (LANE_H + LANE_GAP) + 30;
    let width = LABEL_W + CHART_W + 20;

    let x = |t: Time| -> u64 { LABEL_W + t * CHART_W / makespan };
    let lane_y = |lane: usize| -> u64 { TOP + lane as u64 * (LANE_H + LANE_GAP) };

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(
        s,
        r#"<text x="{LABEL_W}" y="16">schedule "{}" — makespan {} ticks</text>"#,
        xml_escape(&instance.name),
        schedule.makespan()
    );

    let mut lane = 0usize;

    // Core lanes.
    for p in 0..instance.architecture.num_processors {
        let y = lane_y(lane);
        let _ = writeln!(s, r#"<text x="4" y="{}">core {p}</text>"#, y + 17);
        lane_background(&mut s, y);
        for t in schedule.tasks_on_core(p) {
            let a = schedule.assignment(t);
            bar(
                &mut s,
                x(a.start),
                y,
                (x(a.end) - x(a.start)).max(1),
                "#4e79a7",
                &instance.graph.task(t).name,
            );
        }
        lane += 1;
    }

    // Region lanes, grouped by hosting fabric (index order within each
    // group; with a single fabric this is plain index order).
    for f in 0..nf {
        for ri in 0..schedule.regions.len() {
            if schedule.regions[ri].fabric as usize != f {
                continue;
            }
            let rid = RegionId(ri as u32);
            let y = lane_y(lane);
            if multi {
                let _ = writeln!(s, r#"<text x="4" y="{}">f{f} reg {ri}</text>"#, y + 17);
            } else {
                let _ = writeln!(s, r#"<text x="4" y="{}">region {ri}</text>"#, y + 17);
            }
            lane_background(&mut s, y);
            for t in schedule.tasks_in_region(rid) {
                let a = schedule.assignment(t);
                bar(
                    &mut s,
                    x(a.start),
                    y,
                    (x(a.end) - x(a.start)).max(1),
                    "#59a14f",
                    &instance.graph.task(t).name,
                );
            }
            for r in schedule.reconfigurations.iter().filter(|r| r.region == rid) {
                bar(
                    &mut s,
                    x(r.start),
                    y,
                    (x(r.end) - x(r.start)).max(1),
                    "#e15759",
                    "reconf",
                );
            }
            lane += 1;
        }

        // This fabric's controller lanes: each fabric owns its own group
        // of k controllers, packed with the shared rule.
        let idx: Vec<usize> = schedule
            .reconfigurations
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                schedule
                    .regions
                    .get(r.region.index())
                    .map_or(0, |rg| rg.fabric as usize)
                    == f
            })
            .map(|(i, _)| i)
            .collect();
        let rec_windows: Vec<TimeWindow> = idx
            .iter()
            .map(|&i| {
                let r = &schedule.reconfigurations[i];
                TimeWindow::new(r.start, r.end)
            })
            .collect();
        let lane_of = pack_lanes(&rec_windows, k);
        for c in 0..k {
            let y = lane_y(lane);
            if multi {
                let _ = writeln!(s, r#"<text x="4" y="{}">f{f} icap {c}</text>"#, y + 17);
            } else {
                let _ = writeln!(s, r#"<text x="4" y="{}">icap {c}</text>"#, y + 17);
            }
            lane_background(&mut s, y);
            for (j, &i) in idx.iter().enumerate() {
                if lane_of[j] != c {
                    continue;
                }
                let r = &schedule.reconfigurations[i];
                bar(
                    &mut s,
                    x(r.start),
                    y,
                    (x(r.end) - x(r.start)).max(1),
                    "#e15759",
                    &format!("load r{}", r.region.0),
                );
            }
            lane += 1;
        }
    }

    let _ = writeln!(s, "</svg>");
    s
}

fn lane_background(s: &mut String, y: u64) {
    let _ = writeln!(
        s,
        r##"<rect x="{LABEL_W}" y="{y}" width="{CHART_W}" height="{LANE_H}" fill="#f0f0f0"/>"##
    );
}

fn bar(s: &mut String, x: u64, y: u64, w: u64, fill: &str, title: &str) {
    let _ = writeln!(
        s,
        r#"<rect x="{x}" y="{}" width="{w}" height="{}" fill="{fill}" stroke="white"><title>{}</title></rect>"#,
        y + 2,
        LANE_H - 4,
        xml_escape(title)
    );
}

fn xml_escape(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, Placement, Region, ResourceVec,
        TaskAssignment, TaskGraph,
    };

    fn fixture() -> (ProblemInstance, Schedule) {
        let mut impls = ImplPool::new();
        let sw = impls.add(Implementation::software("sw", 30));
        let hw = impls.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("alpha", vec![sw, hw]);
        g.add_task("beta<&>", vec![sw]);
        let inst = ProblemInstance::new(
            "svg",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let sched = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: sw,
                    placement: Placement::Core(0),
                    start: 0,
                    end: 30,
                },
            ],
            reconfigurations: vec![],
        };
        (inst, sched)
    }

    #[test]
    fn emits_well_formed_svg() {
        let (inst, sched) = fixture();
        let svg = render_svg(&inst, &sched);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("core 0"));
        assert!(svg.contains("region 0"));
        assert!(svg.contains("icap"));
        // Task names escaped.
        assert!(svg.contains("beta&lt;&amp;&gt;"));
        assert!(!svg.contains("beta<&>"));
        // One rect per task + backgrounds.
        assert!(svg.matches("<rect").count() >= 5);
    }

    #[test]
    fn empty_schedule_renders() {
        let mut impls = ImplPool::new();
        let _ = impls.add(Implementation::software("x", 1));
        let inst = ProblemInstance::new(
            "empty",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 0, 0), 1)),
            TaskGraph::new(),
            ImplPool::new(),
        )
        .unwrap();
        let svg = render_svg(&inst, &Schedule::default());
        assert!(svg.contains("makespan 0"));
    }
}
