//! From-first-principles schedule validation.
//!
//! Two checkers with identical verdicts:
//!
//! * [`validate_schedule`] — the reference oracle. Its exclusivity scans
//!   re-filter the whole assignment list per core and per region and test
//!   reconfigurations against every task of their region, exactly as the
//!   problem statement reads.
//! * [`validate_schedule_sweep`] — a sweep-line variant that buckets
//!   assignments into lanes in one pass and answers the
//!   reconfiguration-vs-execution queries against a
//!   [`prfpga_timeline::Lane`] in `O(log n)` each, for an overall
//!   `O(n log n)` instead of the oracle's `O(lanes · n + recs · tasks)`.
//!
//! The shape, capacity, precedence and bookkeeping phases are shared; the
//! exclusivity logic is deliberately written twice so the two checkers can
//! serve as differential oracles for each other (see the
//! `validator_mutations` integration test).

use prfpga_model::{
    ImplKind, Placement, ProblemInstance, RegionId, Schedule, TaskId, Time, TimeWindow,
};
use prfpga_timeline::Lane;

use crate::error::ValidationError;

/// Checks every constraint of the problem statement (§III) against a
/// schedule. Returns the first violation found, scanning in a deterministic
/// order, or `Ok(())` for a valid schedule.
///
/// The checks are intentionally written directly against the problem
/// definition rather than reusing any scheduler bookkeeping:
///
/// 1. exactly one assignment per task, implementation drawn from the task's
///    set, hardware in regions / software on in-range cores, slot length
///    equal to the implementation time;
/// 2. every region at least as large as every implementation it hosts;
///    total region demand within device capacity;
/// 3. all data dependencies respected;
/// 4. no overlap of tasks on a core, of tasks (or reconfigurations) in a
///    region, or of reconfigurations on the single controller;
/// 5. between consecutive tasks of a region with *different*
///    implementations there is a reconfiguration loading the later task's
///    bitstream (module reuse: equal implementations need none), completed
///    before the later task starts; reconfiguration durations follow
///    eq. 1–2.
pub fn validate_schedule(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    check_shapes(instance, schedule)?;
    check_capacity(instance, schedule)?;
    check_precedence(instance, schedule)?;

    // --- Core exclusivity ---------------------------------------------------
    for p in 0..instance.architecture.num_processors {
        let tasks = schedule.tasks_on_core(p);
        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::CoreOverlap { a, b, core: p });
            }
        }
    }

    // --- Region exclusivity & reconfiguration bookkeeping -------------------
    for (ri, region) in schedule.regions.iter().enumerate() {
        let rid = RegionId(ri as u32);
        let tasks = schedule.tasks_in_region(rid);

        // Tasks must not overlap each other.
        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::RegionOverlap { a, b, region: rid });
            }
        }

        // Reconfigurations targeting this region must not overlap its tasks.
        for r in schedule.reconfigurations.iter().filter(|r| r.region == rid) {
            for &t in &tasks {
                let a = schedule.assignment(t);
                if overlaps(r.start, r.end, a.start, a.end) {
                    return Err(ValidationError::ReconfigurationDuringExecution { region: rid });
                }
            }
            // Duration follows eq. 1-2 for the hosting fabric's controller.
            if r.duration()
                != instance
                    .architecture
                    .fabric(region.fabric as usize)
                    .reconf_time(&region.res)
            {
                return Err(ValidationError::ReconfigurationDurationMismatch { region: rid });
            }
        }

        // Consecutive tasks with different implementations need an
        // intervening reconfiguration that loads the later bitstream.
        for pair in tasks.windows(2) {
            let (t_in, t_out) = (pair[0], pair[1]);
            let in_a = schedule.assignment(t_in);
            let out_a = schedule.assignment(t_out);
            if in_a.impl_id == out_a.impl_id {
                continue; // module reuse: no reconfiguration required
            }
            let found = schedule.reconfigurations.iter().any(|r| {
                r.region == rid
                    && r.outgoing_task == t_out
                    && r.loads_impl == out_a.impl_id
                    && r.start >= in_a.end
                    && r.end <= out_a.start
            });
            if !found {
                return Err(ValidationError::MissingReconfiguration {
                    task: t_out,
                    region: rid,
                });
            }
        }
    }

    check_dangling(schedule)?;
    check_contention(instance, schedule)
}

/// Sweep-line variant of [`validate_schedule`]: same constraints, same
/// verdicts (including which violation is reported first), different
/// algorithm.
///
/// Assignments are bucketed into per-core / per-region lanes in a single
/// pass and each lane is sorted once, so exclusivity falls out of
/// adjacent-pair scans; each region's committed occupancy is then loaded
/// into a [`Lane`] from the timeline kernel and every reconfiguration
/// queries it with one binary search instead of scanning every task of the
/// region.
pub fn validate_schedule_sweep(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    check_shapes(instance, schedule)?;
    check_capacity(instance, schedule)?;
    check_precedence(instance, schedule)?;

    // One bucketing pass over the assignments; the shape checks above
    // already proved every placement index in range.
    let mut core_lanes: Vec<Vec<TaskId>> = vec![Vec::new(); instance.architecture.num_processors];
    let mut region_lanes: Vec<Vec<TaskId>> = vec![Vec::new(); schedule.regions.len()];
    for (i, a) in schedule.assignments.iter().enumerate() {
        match a.placement {
            Placement::Core(p) => core_lanes[p].push(TaskId(i as u32)),
            Placement::Region(r) => region_lanes[r.index()].push(TaskId(i as u32)),
        }
    }
    // Push order is ascending task id, so a stable sort by start yields
    // (start, id) — the exact order the oracle's per-lane refilters see.
    for lane in core_lanes.iter_mut().chain(region_lanes.iter_mut()) {
        lane.sort_by_key(|t| schedule.assignment(*t).start);
    }
    // Reconfigurations bucketed by target region, schedule order preserved;
    // out-of-range regions fall through to the dangling check.
    let mut region_recs: Vec<Vec<usize>> = vec![Vec::new(); schedule.regions.len()];
    for (ri, r) in schedule.reconfigurations.iter().enumerate() {
        if let Some(bucket) = region_recs.get_mut(r.region.index()) {
            bucket.push(ri);
        }
    }

    for (p, lane) in core_lanes.iter().enumerate() {
        for pair in lane.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::CoreOverlap { a, b, core: p });
            }
        }
    }

    for (s, region) in schedule.regions.iter().enumerate() {
        let rid = RegionId(s as u32);
        let tasks = &region_lanes[s];

        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::RegionOverlap { a, b, region: rid });
            }
        }

        // The region's committed occupancy as a timeline lane — every
        // reserve lands because the adjacent-pair scan above proved the
        // slots disjoint. Zero-length slots store no window, but a
        // zero-length task strictly inside a reconfiguration still clashes
        // under `overlaps`, so their ticks are kept aside (sorted, since
        // the tasks already are).
        let mut occupancy = Lane::new();
        let mut instants: Vec<Time> = Vec::new();
        for &t in tasks {
            let a = schedule.assignment(t);
            let w = TimeWindow::new(a.start, a.end);
            if w.is_empty() {
                instants.push(a.start);
            }
            occupancy
                .reserve(w)
                .expect("region slots are pairwise disjoint");
        }
        for &ri in &region_recs[s] {
            let r = &schedule.reconfigurations[ri];
            let w = TimeWindow::new(r.start, r.end);
            // `overlaps` flags a zero-length record strictly inside a
            // non-empty one (in either direction), while the kernel's
            // set-intersection queries treat empties as free — each
            // degenerate direction gets its own binary search.
            let blocked = if w.is_empty() {
                let ws = occupancy.windows();
                ws.partition_point(|t| t.min < r.start)
                    .checked_sub(1)
                    .is_some_and(|i| ws[i].max > r.start)
            } else {
                let hits_instant = {
                    let i = instants.partition_point(|&x| x <= r.start);
                    instants.get(i).is_some_and(|&x| x < r.end)
                };
                !occupancy.is_free(w) || hits_instant
            };
            if blocked {
                return Err(ValidationError::ReconfigurationDuringExecution { region: rid });
            }
            if r.duration()
                != instance
                    .architecture
                    .fabric(region.fabric as usize)
                    .reconf_time(&region.res)
            {
                return Err(ValidationError::ReconfigurationDurationMismatch { region: rid });
            }
        }

        for pair in tasks.windows(2) {
            let (t_in, t_out) = (pair[0], pair[1]);
            let in_a = schedule.assignment(t_in);
            let out_a = schedule.assignment(t_out);
            if in_a.impl_id == out_a.impl_id {
                continue; // module reuse: no reconfiguration required
            }
            let found = region_recs[s].iter().any(|&ri| {
                let r = &schedule.reconfigurations[ri];
                r.outgoing_task == t_out
                    && r.loads_impl == out_a.impl_id
                    && r.start >= in_a.end
                    && r.end <= out_a.start
            });
            if !found {
                return Err(ValidationError::MissingReconfiguration {
                    task: t_out,
                    region: rid,
                });
            }
        }
    }

    check_dangling(schedule)?;
    check_contention(instance, schedule)
}

/// Per-task shape checks (point 1 of the constraint list): assignment
/// count, implementation membership, placement kind and range, region fit,
/// slot length.
fn check_shapes(instance: &ProblemInstance, schedule: &Schedule) -> Result<(), ValidationError> {
    let n = instance.graph.len();
    if schedule.assignments.len() != n {
        return Err(ValidationError::AssignmentCountMismatch {
            expected: n,
            actual: schedule.assignments.len(),
        });
    }
    for (i, a) in schedule.assignments.iter().enumerate() {
        let t = TaskId(i as u32);
        let node = instance.graph.task(t);
        if !node.impls.contains(&a.impl_id) {
            return Err(ValidationError::ImplNotAvailable { task: t });
        }
        let imp = instance.impls.get(a.impl_id);
        match (&imp.kind, &a.placement) {
            (ImplKind::Hardware(res), Placement::Region(r)) => {
                let Some(region) = schedule.regions.get(r.index()) else {
                    return Err(ValidationError::RegionOutOfRange { task: t });
                };
                if !res.fits_in(&region.res) {
                    return Err(ValidationError::RegionTooSmall {
                        task: t,
                        region: *r,
                    });
                }
            }
            (ImplKind::Software, Placement::Core(p)) => {
                if *p >= instance.architecture.num_processors {
                    return Err(ValidationError::CoreOutOfRange { task: t, core: *p });
                }
            }
            _ => return Err(ValidationError::PlacementKindMismatch { task: t }),
        }
        if a.end.saturating_sub(a.start) != imp.time {
            return Err(ValidationError::DurationMismatch { task: t });
        }
    }
    Ok(())
}

/// Device capacity, per fabric: every region names a real fabric and the
/// regions hosted on each fabric together fit it. On a single fabric this
/// degenerates to the original whole-device check (and keeps its
/// [`ValidationError::DeviceOverCapacity`] verdict).
fn check_capacity(instance: &ProblemInstance, schedule: &Schedule) -> Result<(), ValidationError> {
    let arch = &instance.architecture;
    let nf = arch.num_fabrics();
    for (ri, region) in schedule.regions.iter().enumerate() {
        if region.fabric as usize >= nf {
            return Err(ValidationError::FabricOutOfRange {
                region: RegionId(ri as u32),
            });
        }
    }
    for f in 0..nf {
        if !schedule
            .region_resources_on(f as u32)
            .fits_in(&arch.fabric(f).max_res)
        {
            return Err(if nf == 1 {
                ValidationError::DeviceOverCapacity
            } else {
                ValidationError::FabricOverCapacity { fabric: f as u32 }
            });
        }
    }
    Ok(())
}

/// Precedence with optional communication costs for non-colocated pairs.
/// Region-to-region edges whose endpoints land on different fabrics pay
/// the platform's inter-fabric crossing latency on top of the edge cost
/// (zero without a platform; a single fabric never crosses).
fn check_precedence(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    let crossing = instance.architecture.crossing_latency();
    for (i, &(from, to)) in instance.graph.edges.iter().enumerate() {
        let pa = schedule.assignment(from);
        let sa = schedule.assignment(to);
        let mut comm = if pa.placement.colocated(sa.placement) {
            0
        } else {
            instance.graph.edge_cost(i)
        };
        if let (Placement::Region(ra), Placement::Region(rb)) = (pa.placement, sa.placement) {
            if schedule.regions[ra.index()].fabric != schedule.regions[rb.index()].fabric {
                comm += crossing;
            }
        }
        if sa.start < pa.end + comm {
            return Err(ValidationError::PrecedenceViolated { from, to });
        }
    }
    Ok(())
}

/// Reconfiguration consistency: every reconfiguration names a real task,
/// placed in the named region with the loaded implementation, and finishes
/// before that task starts.
fn check_dangling(schedule: &Schedule) -> Result<(), ValidationError> {
    for r in &schedule.reconfigurations {
        let Some(a) = schedule.assignments.get(r.outgoing_task.index()) else {
            return Err(ValidationError::DanglingReconfiguration {
                task: r.outgoing_task,
            });
        };
        let consistent = a.placement == Placement::Region(r.region)
            && a.impl_id == r.loads_impl
            && r.end <= a.start;
        if !consistent {
            return Err(ValidationError::DanglingReconfiguration {
                task: r.outgoing_task,
            });
        }
    }
    Ok(())
}

/// Controllers: at most k reconfigurations concurrently *per fabric*
/// (k = 1 in the paper's model: reconfigurations fully serialize). Each
/// fabric owns its own controller group, so the sweep runs once per
/// fabric over the reconfigurations of that fabric's regions; with one
/// fabric this is the original single global sweep. Runs after
/// [`check_dangling`], so every reconfiguration's region index is valid.
fn check_contention(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    let k = instance.architecture.num_reconfig_controllers.max(1);
    for f in 0..instance.architecture.num_fabrics() as u32 {
        let mut events: Vec<(Time, i64)> = Vec::with_capacity(schedule.reconfigurations.len() * 2);
        for r in &schedule.reconfigurations {
            if schedule.regions[r.region.index()].fabric == f && r.duration() > 0 {
                events.push((r.start, 1));
                events.push((r.end, -1));
            }
        }
        // Ends sort before starts at equal ticks (half-open intervals).
        events.sort_unstable_by_key(|&(t, delta)| (t, delta));
        let mut active = 0i64;
        for (_, delta) in events {
            active += delta;
            if active > k as i64 {
                return Err(ValidationError::ReconfiguratorContention);
            }
        }
    }
    Ok(())
}

#[inline]
fn overlaps(s1: Time, e1: Time, s2: Time, e2: Time) -> bool {
    s1 < e2 && s2 < e1
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplId, ImplPool, Implementation, Reconfiguration, Region,
        ResourceVec, TaskAssignment, TaskGraph,
    };

    /// Two-task chain: a (hw, 10 ticks, 5 CLB) -> b (hw, 12 ticks, 5 CLB),
    /// same region, different impls; device reconf time for the region is
    /// 5/1 = 5 ticks at rec_freq 1... use rec_freq 1 for easy numbers.
    fn fixture() -> (ProblemInstance, Schedule) {
        let mut impls = ImplPool::new();
        let a_sw = impls.add(Implementation::software("a_sw", 100));
        let a_hw = impls.add(Implementation::hardware(
            "a_hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let b_sw = impls.add(Implementation::software("b_sw", 100));
        let b_hw = impls.add(Implementation::hardware(
            "b_hw",
            12,
            ResourceVec::new(4, 0, 0),
        ));
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![a_sw, a_hw]);
        let b = g.add_task("b", vec![b_sw, b_hw]);
        g.add_edge(a, b);
        let inst = ProblemInstance::new(
            "fix",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(20, 4, 4), 1)),
            g,
            impls,
        )
        .unwrap();

        let schedule = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: a_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: b_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 15,
                    end: 27,
                },
            ],
            reconfigurations: vec![Reconfiguration {
                region: RegionId(0),
                loads_impl: b_hw,
                outgoing_task: b,
                start: 10,
                end: 15, // region has 5 CLB * 1 bit / 1 bit-per-tick = 5 ticks
            }],
        };
        (inst, schedule)
    }

    /// Both checkers, asserting they agree before returning the verdict.
    fn validate_both(inst: &ProblemInstance, s: &Schedule) -> Result<(), ValidationError> {
        let oracle = validate_schedule(inst, s);
        let sweep = validate_schedule_sweep(inst, s);
        assert_eq!(oracle, sweep, "oracle and sweep checker disagree");
        oracle
    }

    #[test]
    fn valid_schedule_passes() {
        let (inst, s) = fixture();
        assert_eq!(validate_both(&inst, &s), Ok(()));
    }

    #[test]
    fn detects_precedence_violation() {
        let (inst, mut s) = fixture();
        s.assignments[1].start = 5;
        s.assignments[1].end = 17;
        let err = validate_both(&inst, &s).unwrap_err();
        // Start-before-producer-ends now also clashes with the region or
        // reconfiguration; precedence is checked first among ordering rules
        // only after shape checks, so accept any of the overlap flavors.
        assert!(matches!(
            err,
            ValidationError::PrecedenceViolated { .. } | ValidationError::RegionOverlap { .. }
        ));
    }

    #[test]
    fn detects_missing_reconfiguration() {
        let (inst, mut s) = fixture();
        s.reconfigurations.clear();
        assert_eq!(
            validate_both(&inst, &s),
            Err(ValidationError::MissingReconfiguration {
                task: TaskId(1),
                region: RegionId(0)
            })
        );
    }

    #[test]
    fn module_reuse_needs_no_reconfiguration() {
        let (inst, mut s) = fixture();
        // Make task b use task a's implementation (shared module).
        let a_hw = s.assignments[0].impl_id;
        // b's impl set does not contain a_hw, so also patch the instance.
        let mut inst2 = inst.clone();
        inst2.graph.tasks[1].impls.push(a_hw);
        s.assignments[1].impl_id = a_hw;
        s.assignments[1].start = 10;
        s.assignments[1].end = 20;
        s.reconfigurations.clear();
        assert_eq!(validate_both(&inst2, &s), Ok(()));
    }

    #[test]
    fn detects_duration_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments[0].end = 9;
        assert_eq!(
            validate_both(&inst, &s),
            Err(ValidationError::DurationMismatch { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_region_too_small() {
        let (inst, mut s) = fixture();
        s.regions[0].res = ResourceVec::new(4, 0, 0); // a_hw needs 5
        let err = validate_both(&inst, &s).unwrap_err();
        assert!(matches!(err, ValidationError::RegionTooSmall { .. }));
    }

    #[test]
    fn detects_device_over_capacity() {
        let (inst, mut s) = fixture();
        s.regions.push(Region {
            res: ResourceVec::new(19, 0, 0),
            fabric: 0,
        });
        assert_eq!(
            validate_both(&inst, &s),
            Err(ValidationError::DeviceOverCapacity)
        );
    }

    #[test]
    fn detects_reconf_duration_mismatch() {
        let (inst, mut s) = fixture();
        s.reconfigurations[0].end = 14;
        // Shift task b so precedence/ordering still hold.
        let err = validate_both(&inst, &s).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::ReconfigurationDurationMismatch { .. }
        ));
    }

    #[test]
    fn detects_reconfigurator_contention() {
        let (inst, mut s) = fixture();
        // A second, overlapping reconfiguration of a second region.
        s.regions.push(Region {
            res: ResourceVec::new(5, 0, 0),
            fabric: 0,
        });
        s.reconfigurations.push(Reconfiguration {
            region: RegionId(1),
            loads_impl: s.assignments[1].impl_id,
            outgoing_task: TaskId(1),
            start: 12,
            end: 17,
        });
        let err = validate_both(&inst, &s).unwrap_err();
        // The extra reconfiguration is dangling (task 1 lives in region 0),
        // which is also a legitimate rejection; accept either.
        assert!(matches!(
            err,
            ValidationError::ReconfiguratorContention
                | ValidationError::DanglingReconfiguration { .. }
        ));
    }

    #[test]
    fn detects_placement_kind_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments[0].placement = Placement::Core(0); // hw impl on a core
        assert_eq!(
            validate_both(&inst, &s),
            Err(ValidationError::PlacementKindMismatch { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_core_overlap() {
        let mut impls = ImplPool::new();
        let a_sw = impls.add(Implementation::software("a_sw", 10));
        let b_sw = impls.add(Implementation::software("b_sw", 10));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![a_sw]);
        g.add_task("b", vec![b_sw]);
        let inst = ProblemInstance::new(
            "cores",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let s = Schedule {
            regions: vec![],
            assignments: vec![
                TaskAssignment {
                    impl_id: a_sw,
                    placement: Placement::Core(0),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: b_sw,
                    placement: Placement::Core(0),
                    start: 5,
                    end: 15,
                },
            ],
            reconfigurations: vec![],
        };
        let err = validate_both(&inst, &s).unwrap_err();
        assert!(matches!(err, ValidationError::CoreOverlap { core: 0, .. }));
    }

    #[test]
    fn detects_impl_not_available() {
        let (inst, mut s) = fixture();
        s.assignments[0].impl_id = ImplId(3); // b_hw, not in a's set
        assert_eq!(
            validate_both(&inst, &s),
            Err(ValidationError::ImplNotAvailable { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_assignment_count_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments.pop();
        assert!(matches!(
            validate_both(&inst, &s),
            Err(ValidationError::AssignmentCountMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }
}
