//! From-first-principles schedule validation.

use prfpga_model::{ImplKind, Placement, ProblemInstance, RegionId, Schedule, TaskId, Time};

use crate::error::ValidationError;

/// Checks every constraint of the problem statement (§III) against a
/// schedule. Returns the first violation found, scanning in a deterministic
/// order, or `Ok(())` for a valid schedule.
///
/// The checks are intentionally written directly against the problem
/// definition rather than reusing any scheduler bookkeeping:
///
/// 1. exactly one assignment per task, implementation drawn from the task's
///    set, hardware in regions / software on in-range cores, slot length
///    equal to the implementation time;
/// 2. every region at least as large as every implementation it hosts;
///    total region demand within device capacity;
/// 3. all data dependencies respected;
/// 4. no overlap of tasks on a core, of tasks (or reconfigurations) in a
///    region, or of reconfigurations on the single controller;
/// 5. between consecutive tasks of a region with *different*
///    implementations there is a reconfiguration loading the later task's
///    bitstream (module reuse: equal implementations need none), completed
///    before the later task starts; reconfiguration durations follow
///    eq. 1–2.
pub fn validate_schedule(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    let n = instance.graph.len();
    if schedule.assignments.len() != n {
        return Err(ValidationError::AssignmentCountMismatch {
            expected: n,
            actual: schedule.assignments.len(),
        });
    }

    let device = &instance.architecture.device;

    // --- Per-task shape checks -------------------------------------------
    for (i, a) in schedule.assignments.iter().enumerate() {
        let t = TaskId(i as u32);
        let node = instance.graph.task(t);
        if !node.impls.contains(&a.impl_id) {
            return Err(ValidationError::ImplNotAvailable { task: t });
        }
        let imp = instance.impls.get(a.impl_id);
        match (&imp.kind, &a.placement) {
            (ImplKind::Hardware(res), Placement::Region(r)) => {
                let Some(region) = schedule.regions.get(r.index()) else {
                    return Err(ValidationError::RegionOutOfRange { task: t });
                };
                if !res.fits_in(&region.res) {
                    return Err(ValidationError::RegionTooSmall {
                        task: t,
                        region: *r,
                    });
                }
            }
            (ImplKind::Software, Placement::Core(p)) => {
                if *p >= instance.architecture.num_processors {
                    return Err(ValidationError::CoreOutOfRange { task: t, core: *p });
                }
            }
            _ => return Err(ValidationError::PlacementKindMismatch { task: t }),
        }
        if a.end.saturating_sub(a.start) != imp.time {
            return Err(ValidationError::DurationMismatch { task: t });
        }
    }

    // --- Device capacity --------------------------------------------------
    if !schedule.total_region_resources().fits_in(&device.max_res) {
        return Err(ValidationError::DeviceOverCapacity);
    }

    // --- Precedence (with optional communication costs) ---------------------
    for (i, &(from, to)) in instance.graph.edges.iter().enumerate() {
        let pa = schedule.assignment(from);
        let sa = schedule.assignment(to);
        let comm = if pa.placement.colocated(sa.placement) {
            0
        } else {
            instance.graph.edge_cost(i)
        };
        if sa.start < pa.end + comm {
            return Err(ValidationError::PrecedenceViolated { from, to });
        }
    }

    // --- Core exclusivity ---------------------------------------------------
    for p in 0..instance.architecture.num_processors {
        let tasks = schedule.tasks_on_core(p);
        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::CoreOverlap { a, b, core: p });
            }
        }
    }

    // --- Region exclusivity & reconfiguration bookkeeping -------------------
    for (ri, region) in schedule.regions.iter().enumerate() {
        let rid = RegionId(ri as u32);
        let tasks = schedule.tasks_in_region(rid);

        // Tasks must not overlap each other.
        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if overlaps(
                schedule.assignment(a).start,
                schedule.assignment(a).end,
                schedule.assignment(b).start,
                schedule.assignment(b).end,
            ) {
                return Err(ValidationError::RegionOverlap { a, b, region: rid });
            }
        }

        // Reconfigurations targeting this region must not overlap its tasks.
        for r in schedule.reconfigurations.iter().filter(|r| r.region == rid) {
            for &t in &tasks {
                let a = schedule.assignment(t);
                if overlaps(r.start, r.end, a.start, a.end) {
                    return Err(ValidationError::ReconfigurationDuringExecution { region: rid });
                }
            }
            // Duration follows eq. 1-2 for the region size.
            if r.duration() != device.reconf_time(&region.res) {
                return Err(ValidationError::ReconfigurationDurationMismatch { region: rid });
            }
        }

        // Consecutive tasks with different implementations need an
        // intervening reconfiguration that loads the later bitstream.
        for pair in tasks.windows(2) {
            let (t_in, t_out) = (pair[0], pair[1]);
            let in_a = schedule.assignment(t_in);
            let out_a = schedule.assignment(t_out);
            if in_a.impl_id == out_a.impl_id {
                continue; // module reuse: no reconfiguration required
            }
            let found = schedule.reconfigurations.iter().any(|r| {
                r.region == rid
                    && r.outgoing_task == t_out
                    && r.loads_impl == out_a.impl_id
                    && r.start >= in_a.end
                    && r.end <= out_a.start
            });
            if !found {
                return Err(ValidationError::MissingReconfiguration {
                    task: t_out,
                    region: rid,
                });
            }
        }
    }

    // --- Reconfiguration consistency ---------------------------------------
    for r in &schedule.reconfigurations {
        let Some(a) = schedule.assignments.get(r.outgoing_task.index()) else {
            return Err(ValidationError::DanglingReconfiguration {
                task: r.outgoing_task,
            });
        };
        let consistent = a.placement == Placement::Region(r.region)
            && a.impl_id == r.loads_impl
            && r.end <= a.start;
        if !consistent {
            return Err(ValidationError::DanglingReconfiguration {
                task: r.outgoing_task,
            });
        }
    }

    // --- Controllers: at most k reconfigurations concurrently ---------------
    // (k = 1 in the paper's model: reconfigurations fully serialize.)
    let k = instance.architecture.num_reconfig_controllers.max(1);
    let mut events: Vec<(Time, i64)> = Vec::with_capacity(schedule.reconfigurations.len() * 2);
    for r in &schedule.reconfigurations {
        if r.duration() > 0 {
            events.push((r.start, 1));
            events.push((r.end, -1));
        }
    }
    // Ends sort before starts at equal ticks (half-open intervals).
    events.sort_unstable_by_key(|&(t, delta)| (t, delta));
    let mut active = 0i64;
    for (_, delta) in events {
        active += delta;
        if active > k as i64 {
            return Err(ValidationError::ReconfiguratorContention);
        }
    }

    Ok(())
}

#[inline]
fn overlaps(s1: Time, e1: Time, s2: Time, e2: Time) -> bool {
    s1 < e2 && s2 < e1
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{
        Architecture, Device, ImplId, ImplPool, Implementation, Reconfiguration, Region,
        ResourceVec, TaskAssignment, TaskGraph,
    };

    /// Two-task chain: a (hw, 10 ticks, 5 CLB) -> b (hw, 12 ticks, 5 CLB),
    /// same region, different impls; device reconf time for the region is
    /// 5/1 = 5 ticks at rec_freq 1... use rec_freq 1 for easy numbers.
    fn fixture() -> (ProblemInstance, Schedule) {
        let mut impls = ImplPool::new();
        let a_sw = impls.add(Implementation::software("a_sw", 100));
        let a_hw = impls.add(Implementation::hardware(
            "a_hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let b_sw = impls.add(Implementation::software("b_sw", 100));
        let b_hw = impls.add(Implementation::hardware(
            "b_hw",
            12,
            ResourceVec::new(4, 0, 0),
        ));
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![a_sw, a_hw]);
        let b = g.add_task("b", vec![b_sw, b_hw]);
        g.add_edge(a, b);
        let inst = ProblemInstance::new(
            "fix",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(20, 4, 4), 1)),
            g,
            impls,
        )
        .unwrap();

        let schedule = Schedule {
            regions: vec![Region {
                res: ResourceVec::new(5, 0, 0),
            }],
            assignments: vec![
                TaskAssignment {
                    impl_id: a_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: b_hw,
                    placement: Placement::Region(RegionId(0)),
                    start: 15,
                    end: 27,
                },
            ],
            reconfigurations: vec![Reconfiguration {
                region: RegionId(0),
                loads_impl: b_hw,
                outgoing_task: b,
                start: 10,
                end: 15, // region has 5 CLB * 1 bit / 1 bit-per-tick = 5 ticks
            }],
        };
        (inst, schedule)
    }

    #[test]
    fn valid_schedule_passes() {
        let (inst, s) = fixture();
        assert_eq!(validate_schedule(&inst, &s), Ok(()));
    }

    #[test]
    fn detects_precedence_violation() {
        let (inst, mut s) = fixture();
        s.assignments[1].start = 5;
        s.assignments[1].end = 17;
        let err = validate_schedule(&inst, &s).unwrap_err();
        // Start-before-producer-ends now also clashes with the region or
        // reconfiguration; precedence is checked first among ordering rules
        // only after shape checks, so accept any of the overlap flavors.
        assert!(matches!(
            err,
            ValidationError::PrecedenceViolated { .. } | ValidationError::RegionOverlap { .. }
        ));
    }

    #[test]
    fn detects_missing_reconfiguration() {
        let (inst, mut s) = fixture();
        s.reconfigurations.clear();
        assert_eq!(
            validate_schedule(&inst, &s),
            Err(ValidationError::MissingReconfiguration {
                task: TaskId(1),
                region: RegionId(0)
            })
        );
    }

    #[test]
    fn module_reuse_needs_no_reconfiguration() {
        let (inst, mut s) = fixture();
        // Make task b use task a's implementation (shared module).
        let a_hw = s.assignments[0].impl_id;
        // b's impl set does not contain a_hw, so also patch the instance.
        let mut inst2 = inst.clone();
        inst2.graph.tasks[1].impls.push(a_hw);
        s.assignments[1].impl_id = a_hw;
        s.assignments[1].start = 10;
        s.assignments[1].end = 20;
        s.reconfigurations.clear();
        assert_eq!(validate_schedule(&inst2, &s), Ok(()));
    }

    #[test]
    fn detects_duration_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments[0].end = 9;
        assert_eq!(
            validate_schedule(&inst, &s),
            Err(ValidationError::DurationMismatch { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_region_too_small() {
        let (inst, mut s) = fixture();
        s.regions[0].res = ResourceVec::new(4, 0, 0); // a_hw needs 5
        let err = validate_schedule(&inst, &s).unwrap_err();
        assert!(matches!(err, ValidationError::RegionTooSmall { .. }));
    }

    #[test]
    fn detects_device_over_capacity() {
        let (inst, mut s) = fixture();
        s.regions.push(Region {
            res: ResourceVec::new(19, 0, 0),
        });
        assert_eq!(
            validate_schedule(&inst, &s),
            Err(ValidationError::DeviceOverCapacity)
        );
    }

    #[test]
    fn detects_reconf_duration_mismatch() {
        let (inst, mut s) = fixture();
        s.reconfigurations[0].end = 14;
        // Shift task b so precedence/ordering still hold.
        let err = validate_schedule(&inst, &s).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::ReconfigurationDurationMismatch { .. }
        ));
    }

    #[test]
    fn detects_reconfigurator_contention() {
        let (inst, mut s) = fixture();
        // A second, overlapping reconfiguration of a second region.
        s.regions.push(Region {
            res: ResourceVec::new(5, 0, 0),
        });
        s.reconfigurations.push(Reconfiguration {
            region: RegionId(1),
            loads_impl: s.assignments[1].impl_id,
            outgoing_task: TaskId(1),
            start: 12,
            end: 17,
        });
        let err = validate_schedule(&inst, &s).unwrap_err();
        // The extra reconfiguration is dangling (task 1 lives in region 0),
        // which is also a legitimate rejection; accept either.
        assert!(matches!(
            err,
            ValidationError::ReconfiguratorContention
                | ValidationError::DanglingReconfiguration { .. }
        ));
    }

    #[test]
    fn detects_placement_kind_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments[0].placement = Placement::Core(0); // hw impl on a core
        assert_eq!(
            validate_schedule(&inst, &s),
            Err(ValidationError::PlacementKindMismatch { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_core_overlap() {
        let mut impls = ImplPool::new();
        let a_sw = impls.add(Implementation::software("a_sw", 10));
        let b_sw = impls.add(Implementation::software("b_sw", 10));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![a_sw]);
        g.add_task("b", vec![b_sw]);
        let inst = ProblemInstance::new(
            "cores",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            impls,
        )
        .unwrap();
        let s = Schedule {
            regions: vec![],
            assignments: vec![
                TaskAssignment {
                    impl_id: a_sw,
                    placement: Placement::Core(0),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: b_sw,
                    placement: Placement::Core(0),
                    start: 5,
                    end: 15,
                },
            ],
            reconfigurations: vec![],
        };
        let err = validate_schedule(&inst, &s).unwrap_err();
        assert!(matches!(err, ValidationError::CoreOverlap { core: 0, .. }));
    }

    #[test]
    fn detects_impl_not_available() {
        let (inst, mut s) = fixture();
        s.assignments[0].impl_id = ImplId(3); // b_hw, not in a's set
        assert_eq!(
            validate_schedule(&inst, &s),
            Err(ValidationError::ImplNotAvailable { task: TaskId(0) })
        );
    }

    #[test]
    fn detects_assignment_count_mismatch() {
        let (inst, mut s) = fixture();
        s.assignments.pop();
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ValidationError::AssignmentCountMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }
}
