//! Mutation tests for the schedule validator.
//!
//! A hand-built, known-valid schedule is corrupted one field at a time;
//! every mutant must be rejected with the *matching* `ValidationError`
//! variant. This pins down the validator's sensitivity: a checker that
//! silently accepts any of these mutants would also wave through the
//! corresponding scheduler bug.
//!
//! Every mutant is fed to both the pairwise oracle (`validate_schedule`)
//! and the sweep-line checker (`validate_schedule_sweep`), which must
//! agree exactly; a systematic field-sweep corpus widens that agreement
//! check far beyond the hand-picked mutants.

use prfpga_model::{
    Architecture, Device, ImplPool, Implementation, Placement, Platform, ProblemInstance,
    Reconfiguration, Region, RegionId, ResourceVec, Schedule, TaskAssignment, TaskGraph, TaskId,
};
use prfpga_sim::{validate_schedule, validate_schedule_sweep, ValidationError};

/// Runs both checkers and asserts exact agreement — same acceptance, same
/// first error — before returning the shared verdict.
fn validate(inst: &ProblemInstance, s: &Schedule) -> Result<(), ValidationError> {
    let oracle = validate_schedule(inst, s);
    let sweep = validate_schedule_sweep(inst, s);
    assert_eq!(
        oracle, sweep,
        "pairwise oracle and sweep checker disagree on a mutant"
    );
    oracle
}

const A: TaskId = TaskId(0); // hw, region 0, [0, 10)
const B: TaskId = TaskId(1); // hw, region 0, [15, 27), needs a reconfiguration
const C: TaskId = TaskId(2); // sw, core 0, [12, 20), depends on A
const D: TaskId = TaskId(3); // sw, core 0, [20, 28), independent
const E: TaskId = TaskId(4); // hw, region 1, [30, 40), optional initial reconf

/// Five tasks across two regions and one core on a 20-CLB device with a
/// single reconfiguration controller (`rec_freq` 1, so a 5-CLB region
/// takes exactly 5 ticks to reconfigure).
///
/// The two reconfigurations occupy the controller at [10, 15) (region 0,
/// loading B's bitstream) and [20, 25) (region 1, pre-loading E's) —
/// back-to-back but never concurrent.
fn fixture() -> (ProblemInstance, Schedule) {
    let mut impls = ImplPool::new();
    let a_hw = impls.add(Implementation::hardware(
        "a_hw",
        10,
        ResourceVec::new(5, 0, 0),
    ));
    let a_sw = impls.add(Implementation::software("a_sw", 100));
    let b_hw = impls.add(Implementation::hardware(
        "b_hw",
        12,
        ResourceVec::new(4, 0, 0),
    ));
    let b_sw = impls.add(Implementation::software("b_sw", 100));
    let c_sw = impls.add(Implementation::software("c_sw", 8));
    let d_sw = impls.add(Implementation::software("d_sw", 8));
    let e_hw = impls.add(Implementation::hardware(
        "e_hw",
        10,
        ResourceVec::new(5, 0, 0),
    ));
    let e_sw = impls.add(Implementation::software("e_sw", 100));

    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![a_hw, a_sw]);
    let b = g.add_task("b", vec![b_hw, b_sw]);
    let c = g.add_task("c", vec![c_sw]);
    let _d = g.add_task("d", vec![d_sw]);
    let _e = g.add_task("e", vec![e_hw, e_sw]);
    g.add_edge(a, b);
    g.add_edge(a, c);

    let inst = ProblemInstance::new(
        "mutation_fixture",
        Architecture::new(1, Device::tiny_test(ResourceVec::new(20, 4, 4), 1)),
        g,
        impls,
    )
    .unwrap();

    let schedule = Schedule {
        regions: vec![
            Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            },
            Region {
                res: ResourceVec::new(5, 0, 0),
                fabric: 0,
            },
        ],
        assignments: vec![
            TaskAssignment {
                impl_id: a_hw,
                placement: Placement::Region(RegionId(0)),
                start: 0,
                end: 10,
            },
            TaskAssignment {
                impl_id: b_hw,
                placement: Placement::Region(RegionId(0)),
                start: 15,
                end: 27,
            },
            TaskAssignment {
                impl_id: c_sw,
                placement: Placement::Core(0),
                start: 12,
                end: 20,
            },
            TaskAssignment {
                impl_id: d_sw,
                placement: Placement::Core(0),
                start: 20,
                end: 28,
            },
            TaskAssignment {
                impl_id: e_hw,
                placement: Placement::Region(RegionId(1)),
                start: 30,
                end: 40,
            },
        ],
        reconfigurations: vec![
            Reconfiguration {
                region: RegionId(0),
                loads_impl: b_hw,
                outgoing_task: B,
                start: 10,
                end: 15,
            },
            Reconfiguration {
                region: RegionId(1),
                loads_impl: e_hw,
                outgoing_task: E,
                start: 20,
                end: 25,
            },
        ],
    };
    (inst, schedule)
}

#[test]
fn baseline_fixture_is_valid() {
    let (inst, s) = fixture();
    assert_eq!(validate(&inst, &s), Ok(()));
}

/// Mutation: C starts before its producer A finishes. C sits on a core
/// while A sits in a region, so precedence is the *only* constraint the
/// shift can break — the rejection variant is exact, not a coincidence
/// of check ordering.
#[test]
fn start_before_dependency_is_precedence_violated() {
    let (inst, mut s) = fixture();
    s.assignments[C.index()].start = 5;
    s.assignments[C.index()].end = 13; // keep the 8-tick duration intact
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::PrecedenceViolated { from: A, to: C })
    );
}

/// Mutation: region 0 shrinks below A's 5-CLB implementation.
#[test]
fn region_below_implementation_is_region_too_small() {
    let (inst, mut s) = fixture();
    s.regions[0].res = ResourceVec::new(4, 0, 0);
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::RegionTooSmall {
            task: A,
            region: RegionId(0)
        })
    );
}

/// Mutation: the reconfiguration between A and B (different bitstreams in
/// one region) is dropped.
#[test]
fn dropped_reconfiguration_is_missing_reconfiguration() {
    let (inst, mut s) = fixture();
    s.reconfigurations.retain(|r| r.region != RegionId(0));
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::MissingReconfiguration {
            task: B,
            region: RegionId(0)
        })
    );
}

/// Mutation: D slides under C on core 0. D has no dependencies, so core
/// exclusivity is the only constraint violated.
#[test]
fn two_tasks_on_one_core_is_core_overlap() {
    let (inst, mut s) = fixture();
    s.assignments[D.index()].start = 16;
    s.assignments[D.index()].end = 24;
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::CoreOverlap {
            a: C,
            b: D,
            core: 0
        })
    );
}

/// Mutation: region 1's reconfiguration slides onto the controller while
/// region 0's is still running. Both stay individually well-formed
/// (correct duration, finish before their task starts), so the single
/// controller is the only constraint violated.
#[test]
fn overlapping_reconfigurations_are_reconfigurator_contention() {
    let (inst, mut s) = fixture();
    s.reconfigurations[1].start = 12;
    s.reconfigurations[1].end = 17;
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::ReconfiguratorContention)
    );
}

// --- Multi-fabric mutation seeds --------------------------------------------
//
// The fixture re-hosted on a two-fabric platform. The violations below are
// invisible to a single-device checker: the summed capacity still fits, the
// controller overlap is legal when the fabrics differ, and the precedence
// slack is exactly eaten by the crossing latency.

/// Same tasks, windows and reconfigurations as [`fixture`], but the target
/// is a platform of two identical 20-CLB fabrics (crossing latency 7),
/// with region 0 on fabric 0 and region 1 on fabric 1. The fabrics match
/// the original device, so every duration is unchanged and the baseline
/// stays valid.
fn multi_fabric_fixture() -> (ProblemInstance, Schedule) {
    let (base, mut s) = fixture();
    let platform = Platform {
        name: "dual-tiny".to_string(),
        fabrics: vec![
            Device::tiny_test(ResourceVec::new(20, 4, 4), 1),
            Device::tiny_test(ResourceVec::new(20, 4, 4), 1),
        ],
        crossing_latency: 7,
    };
    let inst = ProblemInstance::new(
        "multi_fabric_fixture",
        Architecture::on_platform(1, platform),
        base.graph.clone(),
        base.impls.clone(),
    )
    .unwrap();
    s.regions[1].fabric = 1;
    (inst, s)
}

#[test]
fn multi_fabric_baseline_is_valid() {
    let (inst, s) = multi_fabric_fixture();
    assert_eq!(validate(&inst, &s), Ok(()));
}

/// Seed: an extra idle region pushes fabric 0 past its 20-CLB capacity
/// while the *summed* capacity (the single-device relaxation) still fits —
/// only a per-fabric capacity check rejects this.
#[test]
fn over_capacity_fabric_is_fabric_over_capacity() {
    let (inst, mut s) = multi_fabric_fixture();
    s.regions.push(Region {
        res: ResourceVec::new(16, 0, 0),
        fabric: 0,
    });
    // Fabric 0 now hosts 5 + 16 = 21 > 20 CLB; 26 total <= 40 summed.
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::FabricOverCapacity { fabric: 0 })
    );
}

/// Seed: the two reconfigurations overlap in time. On different fabrics
/// that is legal — each fabric owns its own controller group — but
/// re-hosting region 1 on fabric 0 turns the same overlap into contention
/// on one controller.
#[test]
fn controller_overlap_contends_on_one_fabric_not_across_two() {
    let (inst, mut s) = multi_fabric_fixture();
    s.reconfigurations[1].start = 12;
    s.reconfigurations[1].end = 17;
    assert_eq!(validate(&inst, &s), Ok(()));
    s.regions[1].fabric = 0;
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::ReconfiguratorContention)
    );
}

/// Seed: task A migrates to region 1 (fabric 1) without re-timing. Its
/// edge to B now crosses fabrics, so B must start no earlier than
/// `end(A) + 7`; the 5-tick gap no longer suffices. Zeroing the platform's
/// crossing latency makes the identical schedule valid again, pinning the
/// crossing charge as the only violation.
#[test]
fn missing_crossing_latency_is_precedence_violated() {
    let (inst, mut s) = multi_fabric_fixture();
    s.assignments[A.index()].placement = Placement::Region(RegionId(1));
    assert_eq!(
        validate(&inst, &s),
        Err(ValidationError::PrecedenceViolated { from: A, to: B })
    );
    let mut free = inst.clone();
    free.architecture
        .platform
        .as_mut()
        .unwrap()
        .crossing_latency = 0;
    assert_eq!(validate(&free, &s), Ok(()));
}

// --- Systematic sweep-vs-oracle agreement corpus ---------------------------
//
// Single-field mutations applied mechanically to every slot, window and
// reconfiguration record of the fixture. None of the expectations below are
// about *which* error appears — only that the pairwise oracle and the
// sweep-line checker return the exact same `Result` on every mutant.

fn mutated(base: &Schedule, f: impl FnOnce(&mut Schedule)) -> Schedule {
    let mut m = base.clone();
    f(&mut m);
    m
}

/// All single-field mutants of a schedule. Windows are kept non-inverted
/// (`end >= start`): `duration()` on an inverted record is out of contract
/// for both checkers alike.
fn field_sweep_corpus(base: &Schedule) -> Vec<Schedule> {
    let deltas: [i64; 8] = [-12, -5, -3, -1, 1, 3, 5, 12];
    let mut out = Vec::new();
    for i in 0..base.assignments.len() {
        for &d in &deltas {
            // Slide the whole slot.
            out.push(mutated(base, |m| {
                let a = &mut m.assignments[i];
                let span = a.end - a.start;
                a.start = a.start.saturating_add_signed(d);
                a.end = a.start + span;
            }));
            // Resize by moving only the end.
            out.push(mutated(base, |m| {
                let a = &mut m.assignments[i];
                a.end = a.end.saturating_add_signed(d).max(a.start);
            }));
        }
        // Re-place on the other kind of lane.
        out.push(mutated(base, |m| {
            m.assignments[i].placement = match m.assignments[i].placement {
                Placement::Core(_) => Placement::Region(RegionId(0)),
                Placement::Region(_) => Placement::Core(0),
            };
        }));
        // Point into the other region / an out-of-range one.
        out.push(mutated(base, |m| {
            m.assignments[i].placement = Placement::Region(RegionId(1));
        }));
        out.push(mutated(base, |m| {
            m.assignments[i].placement = Placement::Region(RegionId(7));
        }));
    }
    for ri in 0..base.reconfigurations.len() {
        for &d in &deltas {
            out.push(mutated(base, |m| {
                let r = &mut m.reconfigurations[ri];
                let span = r.end - r.start;
                r.start = r.start.saturating_add_signed(d);
                r.end = r.start + span;
            }));
            out.push(mutated(base, |m| {
                let r = &mut m.reconfigurations[ri];
                r.end = r.end.saturating_add_signed(d).max(r.start);
            }));
        }
        // Retarget, drop and duplicate.
        out.push(mutated(base, |m| {
            let r = &mut m.reconfigurations[ri];
            r.region = RegionId((r.region.0 + 1) % 2);
        }));
        out.push(mutated(base, |m| {
            m.reconfigurations[ri].region = RegionId(9);
        }));
        out.push(mutated(base, |m| {
            m.reconfigurations[ri].outgoing_task = A;
        }));
        out.push(mutated(base, |m| {
            m.reconfigurations.remove(ri);
        }));
        out.push(mutated(base, |m| {
            let dup = m.reconfigurations[ri];
            m.reconfigurations.push(dup);
        }));
    }
    for s in 0..base.regions.len() {
        for clb in [0, 3, 4, 6, 19, 30] {
            out.push(mutated(base, |m| {
                m.regions[s].res = ResourceVec::new(clb, 0, 0);
            }));
        }
    }
    out.push(mutated(base, |m| {
        m.assignments.pop();
    }));
    out.push(mutated(base, |m| {
        m.regions.pop();
    }));
    out
}

/// Every single-field mutant gets the same verdict — accept or the same
/// first error — from both checkers.
#[test]
fn sweep_agrees_with_oracle_on_field_sweep_corpus() {
    let (inst, base) = fixture();
    let corpus = field_sweep_corpus(&base);
    assert!(corpus.len() > 100, "corpus unexpectedly small");
    for (i, mutant) in corpus.iter().enumerate() {
        let oracle = validate_schedule(&inst, mutant);
        let sweep = validate_schedule_sweep(&inst, mutant);
        assert_eq!(oracle, sweep, "checkers disagree on mutant #{i}");
    }
}

// --- Degraded-schedule seeds -----------------------------------------------
//
// The anytime schedulers and the portfolio driver return cut-short results
// with shapes the search never produces when it runs to completion: PA's
// all-software fallback has *zero* regions and no reconfigurations, and a
// cancelled mid-search result can leave a lone hardware prefix with the
// rest serialized onto cores. Both checkers must handle these shapes — and
// every single-field corruption of them — identically.

/// PA's anytime fallback shape: no regions, no reconfigurations, every
/// task serialized onto core 0 in precedence order.
fn degraded_all_software_fixture() -> (ProblemInstance, Schedule) {
    let (inst, _) = fixture();
    let sw = |name: &str| {
        inst.impls
            .iter()
            .find(|(_, im)| im.name == name)
            .map(|(i, _)| i)
            .unwrap()
    };
    let slot = |name: &str, start: u64, end: u64| TaskAssignment {
        impl_id: sw(name),
        placement: Placement::Core(0),
        start,
        end,
    };
    let schedule = Schedule {
        regions: vec![],
        assignments: vec![
            slot("a_sw", 0, 100),
            slot("b_sw", 100, 200),
            slot("c_sw", 200, 208),
            slot("d_sw", 208, 216),
            slot("e_sw", 216, 316),
        ],
        reconfigurations: vec![],
    };
    (inst, schedule)
}

/// A cancelled mid-search shape: the first task kept on its hardware
/// implementation (initially-loaded region, so no reconfiguration record),
/// everything after the cut serialized in software.
fn degraded_prefix_hw_fixture() -> (ProblemInstance, Schedule) {
    let (inst, base) = fixture();
    let sw = |name: &str| {
        inst.impls
            .iter()
            .find(|(_, im)| im.name == name)
            .map(|(i, _)| i)
            .unwrap()
    };
    let slot = |name: &str, start: u64, end: u64| TaskAssignment {
        impl_id: sw(name),
        placement: Placement::Core(0),
        start,
        end,
    };
    let schedule = Schedule {
        regions: vec![base.regions[0].clone()],
        assignments: vec![
            base.assignments[A.index()], // hw, region 0, [0, 10)
            slot("b_sw", 10, 110),
            slot("c_sw", 110, 118),
            slot("d_sw", 118, 126),
            slot("e_sw", 126, 226),
        ],
        reconfigurations: vec![],
    };
    (inst, schedule)
}

#[test]
fn degraded_seed_fixtures_are_valid() {
    let (inst, s) = degraded_all_software_fixture();
    assert_eq!(validate(&inst, &s), Ok(()));
    let (inst, s) = degraded_prefix_hw_fixture();
    assert_eq!(validate(&inst, &s), Ok(()));
}

/// The full single-field corpus over both degraded seeds: the checkers
/// agree on every mutant, including region references into an empty or
/// shortened region table.
#[test]
fn sweep_agrees_with_oracle_on_degraded_seeds() {
    for (name, (inst, base)) in [
        ("all_software", degraded_all_software_fixture()),
        ("prefix_hw", degraded_prefix_hw_fixture()),
    ] {
        let corpus = field_sweep_corpus(&base);
        assert!(corpus.len() > 50, "{name}: corpus unexpectedly small");
        for (i, mutant) in corpus.iter().enumerate() {
            let oracle = validate_schedule(&inst, mutant);
            let sweep = validate_schedule_sweep(&inst, mutant);
            assert_eq!(oracle, sweep, "checkers disagree on {name} mutant #{i}");
        }
    }
}

/// Second-order corpus: every *pair* of single-field mutations, composed
/// (~2·10⁴ double mutants). Quadratic in the corpus size, so release
/// builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "quadratic double-mutation corpus; run in the release tier"
)]
fn sweep_agrees_with_oracle_on_double_mutants() {
    let (inst, base) = fixture();
    let corpus = field_sweep_corpus(&base);
    for (i, first) in corpus.iter().enumerate() {
        for (j, second) in field_sweep_corpus(first).into_iter().enumerate() {
            let oracle = validate_schedule(&inst, &second);
            let sweep = validate_schedule_sweep(&inst, &second);
            assert_eq!(oracle, sweep, "checkers disagree on mutant #{i}.{j}");
        }
    }
}
