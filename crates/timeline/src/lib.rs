//! # prfpga-timeline
//!
//! Typed lane-reservation kernel shared by every component that enforces
//! time-exclusivity on a resource: the PA pipeline (core mapping in phase
//! F, controller arbitration in phase G), the baseline schedulers'
//! [`PartialSchedule`] bookkeeping, the simulator's ASAP executor and the
//! sweep-line validator.
//!
//! A [`Lane`] models one serially-reusable resource — a processor core, a
//! reconfigurable region or a reconfiguration controller (the
//! [`LaneKind`] taxonomy) — as a sorted list of pairwise-disjoint
//! half-open [`TimeWindow`]s. The kernel offers:
//!
//! * [`Lane::reserve`] — binary-search insertion that either commits a
//!   window or reports the clashing neighbour;
//! * [`Lane::earliest_fit`] — first gap of a given duration at or after a
//!   release tick (prefetch-into-gap queries);
//! * [`Lane::free_from`] — the tick after the last reservation, the O(1)
//!   "when does this resource drain" query;
//! * [`Timeline::mark`] / [`Timeline::rollback`] — journal-based undo of
//!   any suffix of reservations (including lanes opened since the mark),
//!   which is what lets branch-and-bound search explore moves without
//!   cloning its state.
//!
//! The structures deliberately hold no task identities — only windows.
//! Consumers keep their own "who occupies this slot" tables; the kernel
//! guarantees the slots never collide.
//!
//! [`PartialSchedule`]: https://docs.rs/prfpga-baseline

#![warn(missing_docs)]

use std::fmt;

pub use prfpga_model::{Time, TimeWindow};

/// What a [`Lane`] serializes. The taxonomy follows the paper's three
/// exclusive resources (§III): processor cores, reconfigurable regions and
/// reconfiguration controllers (eq. 1–2 serialize the latter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneKind {
    /// A processor core executing software tasks.
    Core,
    /// A reconfigurable region hosting hardware tasks (and the
    /// reconfigurations that re-target it).
    Region,
    /// A reconfiguration controller (ICAP) streaming bitstreams.
    Controller,
}

/// Identity of a lane inside a [`Timeline`]: kind plus index within the
/// kind (core 0, region 2, controller 0, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId {
    /// The resource class.
    pub kind: LaneKind,
    /// Index within the class.
    pub index: usize,
}

impl LaneId {
    /// Lane of processor core `index`.
    #[inline]
    pub fn core(index: usize) -> Self {
        LaneId {
            kind: LaneKind::Core,
            index,
        }
    }

    /// Lane of reconfigurable region `index`.
    #[inline]
    pub fn region(index: usize) -> Self {
        LaneId {
            kind: LaneKind::Region,
            index,
        }
    }

    /// Lane of reconfiguration controller `index`.
    #[inline]
    pub fn controller(index: usize) -> Self {
        LaneId {
            kind: LaneKind::Controller,
            index,
        }
    }
}

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LaneKind::Core => write!(f, "core {}", self.index),
            LaneKind::Region => write!(f, "region {}", self.index),
            LaneKind::Controller => write!(f, "controller {}", self.index),
        }
    }
}

/// A rejected reservation: `attempted` intersects `existing` on `lane`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Lane the reservation targeted.
    pub lane: LaneId,
    /// The window that could not be committed.
    pub attempted: TimeWindow,
    /// The already-committed window it clashes with.
    pub existing: TimeWindow,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reservation [{}, {}) on {} clashes with [{}, {})",
            self.attempted.min, self.attempted.max, self.lane, self.existing.min, self.existing.max
        )
    }
}

/// One serially-reusable resource: pairwise-disjoint, non-empty half-open
/// windows sorted by start (and therefore, being disjoint, also by end).
///
/// Empty windows (`min == max`) occupy no tick: reserving one is accepted
/// as a no-op and nothing is stored, so the sortedness-by-end invariant —
/// which [`Lane::earliest_fit`]'s binary search leans on — always holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lane {
    windows: Vec<TimeWindow>,
    free_from: Time,
}

impl Lane {
    /// An empty lane, free from tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes every reservation, keeping the allocation.
    pub fn clear(&mut self) {
        self.windows.clear();
        self.free_from = 0;
    }

    /// Tick from which the lane is permanently free: the latest end of any
    /// reservation (0 for an empty lane). Zero-length reservations advance
    /// this clock without occupying a tick — the lane behaves like the
    /// availability clocks it replaces in the schedulers.
    #[inline]
    pub fn free_from(&self) -> Time {
        self.free_from
    }

    /// The committed windows, sorted by start.
    #[inline]
    pub fn windows(&self) -> &[TimeWindow] {
        &self.windows
    }

    /// Number of committed (non-empty) windows.
    #[inline]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing is reserved.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Position at which `w` would be inserted (first window starting at
    /// or after `w.min`).
    #[inline]
    fn insertion_point(&self, w: TimeWindow) -> usize {
        self.windows.partition_point(|x| x.min < w.min)
    }

    /// The committed window intersecting `w`, if any.
    pub fn conflict_with(&self, w: TimeWindow) -> Option<TimeWindow> {
        if w.is_empty() {
            return None;
        }
        let pos = self.insertion_point(w);
        if let Some(&prev) = pos.checked_sub(1).and_then(|i| self.windows.get(i)) {
            // prev.min < w.min, so they intersect iff prev runs past w.min.
            if prev.max > w.min {
                return Some(prev);
            }
        }
        if let Some(&next) = self.windows.get(pos) {
            // next.min >= w.min, so they intersect iff w runs past next.min.
            if next.min < w.max {
                return Some(next);
            }
        }
        None
    }

    /// True when `w` can be committed without clashing.
    #[inline]
    pub fn is_free(&self, w: TimeWindow) -> bool {
        self.conflict_with(w).is_none()
    }

    /// Commits `w`, or reports the clashing window. Returns the insertion
    /// position (`None` for an empty `w`, which stores no window but still
    /// advances [`Lane::free_from`] past `w.max`).
    pub fn reserve(&mut self, w: TimeWindow) -> Result<Option<usize>, TimeWindow> {
        if w.is_empty() {
            self.free_from = self.free_from.max(w.max);
            return Ok(None);
        }
        if let Some(existing) = self.conflict_with(w) {
            return Err(existing);
        }
        let pos = self.insertion_point(w);
        self.windows.insert(pos, w);
        self.free_from = self.free_from.max(w.max);
        Ok(Some(pos))
    }

    /// Earliest start `s >= release` such that `[s, s + duration)` fits in
    /// a gap between the committed windows. A binary search skips every
    /// window ending at or before `release`; the candidate start then
    /// slides over the (few) windows that intersect the probed range.
    ///
    /// Zero-duration probes inherit the legacy linear-scan contract: they
    /// may land on a window boundary (including its start tick) but a
    /// release strictly inside a window slides to that window's end.
    pub fn earliest_fit(&self, release: Time, duration: Time) -> Time {
        let mut candidate = release;
        // Disjoint windows sorted by start are also sorted by end, so all
        // windows before this index end at or before `release` and cannot
        // displace the candidate.
        let start = self.windows.partition_point(|x| x.max <= release);
        for w in &self.windows[start..] {
            if candidate + duration <= w.min {
                break;
            }
            candidate = candidate.max(w.max);
        }
        candidate
    }

    /// Rollback helper: removes the window at `pos` (as returned by
    /// [`Lane::reserve`]; `None` for a zero-length reservation) and
    /// restores the pre-reservation `free_from`.
    fn unreserve(&mut self, pos: Option<usize>, prev_free: Time) {
        if let Some(pos) = pos {
            self.windows.remove(pos);
        }
        self.free_from = prev_free;
    }

    /// Partial-suffix rollback: discards every reservation starting at or
    /// after `t`, returning how many windows were removed. Windows that
    /// straddle `t` (started strictly before it) are kept whole — they
    /// model work already in flight at the cut.
    ///
    /// The availability clock is re-derived from the surviving windows:
    /// their latest end (which can run past `t` when a straddling window
    /// keeps the lane busy across the cut). Zero-length clock bumps are
    /// not stored, so when the clock sits past every stored window it is
    /// clamped to `min(free_from, t)` — bumps before the cut survive only
    /// up to `t`, an over-approximation that never admits a
    /// double-booking.
    pub fn rollback_after(&mut self, t: Time) -> usize {
        let bumped = self.free_from > self.windows.last().map_or(0, |w| w.max);
        let cut = self.windows.partition_point(|w| w.min < t);
        let removed = self.windows.len() - cut;
        self.windows.truncate(cut);
        let tail = self.windows.last().map_or(0, |w| w.max);
        self.free_from = if bumped {
            self.free_from.min(t).max(tail)
        } else {
            tail
        };
        removed
    }
}

/// Per-[`Timeline`] usage counters, surfaced by the schedulers' tracing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineStats {
    /// Windows committed (empty-window no-ops excluded).
    pub reservations: u64,
    /// [`Timeline::earliest_fit`] / controller first-fit gap queries.
    pub gap_queries: u64,
}

/// A journal entry: enough to undo one successful reservation.
#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    lane: LaneId,
    /// `None` for an empty-window no-op reservation.
    pos: Option<usize>,
    prev_free: Time,
}

/// Snapshot of a [`Timeline`]'s shape, taken by [`Timeline::mark`] and
/// consumed by [`Timeline::rollback`].
#[derive(Debug, Clone, Copy)]
pub struct TimelineMark {
    journal_len: usize,
    cores: usize,
    regions: usize,
    controllers: usize,
}

/// A set of lanes grouped by [`LaneKind`], with a reservation journal for
/// snapshot/rollback.
///
/// All mutation goes through the timeline (not the lanes directly) so the
/// journal always covers the full history; [`Timeline::rollback`] undoes
/// reservations in LIFO order and drops lanes opened since the mark,
/// recycling their buffers through an internal pool. Long-lived callers
/// (the scheduler workspace of `prfpga-sched`) keep one `Timeline` across
/// runs and [`Timeline::reset`] it per run, which is allocation-free in
/// the steady state.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    cores: Vec<Lane>,
    regions: Vec<Lane>,
    controllers: Vec<Lane>,
    journal: Vec<JournalEntry>,
    /// Named checkpoints, a strictly-nested stack over the journal.
    checkpoints: Vec<(String, TimelineMark)>,
    /// Cleared lanes recycled from rollbacks/resets.
    spare: Vec<Lane>,
    reservations: u64,
    gap_queries: std::cell::Cell<u64>,
}

impl Timeline {
    /// An empty timeline with no lanes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Timeline with a fixed lane population.
    pub fn with_lanes(cores: usize, regions: usize, controllers: usize) -> Self {
        let mut t = Self::new();
        t.reset(cores, regions, controllers);
        t
    }

    /// Clears every reservation, the journal and the counters, and
    /// repopulates the lane groups to the requested sizes, recycling lane
    /// buffers instead of reallocating them.
    pub fn reset(&mut self, cores: usize, regions: usize, controllers: usize) {
        let spare = &mut self.spare;
        for (group, want) in [
            (&mut self.cores, cores),
            (&mut self.regions, regions),
            (&mut self.controllers, controllers),
        ] {
            while group.len() > want {
                let mut lane = group.pop().expect("len checked");
                lane.clear();
                spare.push(lane);
            }
            for lane in group.iter_mut() {
                lane.clear();
            }
            while group.len() < want {
                group.push(spare.pop().unwrap_or_default());
            }
        }
        self.journal.clear();
        self.checkpoints.clear();
        self.reservations = 0;
        self.gap_queries.set(0);
    }

    /// Opens a new lane of `kind`, returning its id.
    pub fn add_lane(&mut self, kind: LaneKind) -> LaneId {
        let lane = self.spare.pop().unwrap_or_default();
        debug_assert!(lane.is_empty());
        let group = self.group_mut(kind);
        group.push(lane);
        LaneId {
            kind,
            index: group.len() - 1,
        }
    }

    #[inline]
    fn group(&self, kind: LaneKind) -> &Vec<Lane> {
        match kind {
            LaneKind::Core => &self.cores,
            LaneKind::Region => &self.regions,
            LaneKind::Controller => &self.controllers,
        }
    }

    #[inline]
    fn group_mut(&mut self, kind: LaneKind) -> &mut Vec<Lane> {
        match kind {
            LaneKind::Core => &mut self.cores,
            LaneKind::Region => &mut self.regions,
            LaneKind::Controller => &mut self.controllers,
        }
    }

    /// The lane addressed by `id`. Panics on an out-of-range index.
    #[inline]
    pub fn lane(&self, id: LaneId) -> &Lane {
        &self.group(id.kind)[id.index]
    }

    /// Number of lanes of `kind`.
    #[inline]
    pub fn lanes(&self, kind: LaneKind) -> usize {
        self.group(kind).len()
    }

    /// Tick from which lane `id` is permanently free.
    #[inline]
    pub fn free_from(&self, id: LaneId) -> Time {
        self.lane(id).free_from()
    }

    /// Commits `w` on lane `id`, journaling the move for rollback.
    pub fn reserve(&mut self, id: LaneId, w: TimeWindow) -> Result<(), Conflict> {
        let prev_free = self.lane(id).free_from();
        match self.group_mut(id.kind)[id.index].reserve(w) {
            Ok(pos) => {
                if pos.is_some() {
                    self.reservations += 1;
                }
                self.journal.push(JournalEntry {
                    lane: id,
                    pos,
                    prev_free,
                });
                Ok(())
            }
            Err(existing) => Err(Conflict {
                lane: id,
                attempted: w,
                existing,
            }),
        }
    }

    /// Earliest gap of `duration` on lane `id` at or after `release`
    /// (counted as a gap query).
    pub fn earliest_fit(&self, id: LaneId, release: Time, duration: Time) -> Time {
        self.gap_queries.set(self.gap_queries.get() + 1);
        self.lane(id).earliest_fit(release, duration)
    }

    /// The controller lane that drains first: `(index, free_from)` with
    /// ties broken towards the lowest index. This is clock-style
    /// arbitration — unlike [`Timeline::controller_first_fit`] it never
    /// backfills a gap, which is the contract of the PA pipeline's phase G
    /// event pass. Panics when no controller lane exists.
    pub fn controller_next_free(&self) -> (usize, Time) {
        self.controller_next_free_in(0, self.controllers.len())
    }

    /// [`Timeline::controller_next_free`] restricted to the `count`
    /// controller lanes starting at `start` — the lane group owned by one
    /// fabric of a multi-fabric platform (fabric `f` of a platform with `k`
    /// controllers per fabric owns lanes `[f*k, f*k+k)`). Returns an
    /// absolute lane index. With `start == 0` and `count` covering every
    /// lane this is exactly the global query.
    pub fn controller_next_free_in(&self, start: usize, count: usize) -> (usize, Time) {
        self.gap_queries.set(self.gap_queries.get() + 1);
        self.controllers[start..start + count]
            .iter()
            .enumerate()
            .map(|(c, lane)| (start + c, lane.free_from()))
            .min_by_key(|&(c, free)| (free, c))
            .expect("at least one controller lane in range")
    }

    /// First gap of `duration` across all controller lanes at or after
    /// `release`: the controller offering the earliest slot, ties broken
    /// towards the lowest index. Panics when no controller lane exists.
    pub fn controller_first_fit(&self, release: Time, duration: Time) -> (usize, Time) {
        self.controller_first_fit_in(0, self.controllers.len(), release, duration)
    }

    /// [`Timeline::controller_first_fit`] restricted to the `count`
    /// controller lanes starting at `start` (one fabric's lane group);
    /// returns an absolute lane index.
    pub fn controller_first_fit_in(
        &self,
        start: usize,
        count: usize,
        release: Time,
        duration: Time,
    ) -> (usize, Time) {
        self.gap_queries.set(self.gap_queries.get() + 1);
        self.controllers[start..start + count]
            .iter()
            .enumerate()
            .map(|(c, lane)| (start + c, lane.earliest_fit(release, duration)))
            .min_by_key(|&(c, t)| (t, c))
            .expect("at least one controller lane in range")
    }

    /// Usage counters accumulated since the last [`Timeline::reset`].
    pub fn stats(&self) -> TimelineStats {
        TimelineStats {
            reservations: self.reservations,
            gap_queries: self.gap_queries.get(),
        }
    }

    /// Snapshot of the current shape; see [`Timeline::rollback`].
    pub fn mark(&self) -> TimelineMark {
        TimelineMark {
            journal_len: self.journal.len(),
            cores: self.cores.len(),
            regions: self.regions.len(),
            controllers: self.controllers.len(),
        }
    }

    /// Undoes every reservation made since `mark` (LIFO) and closes lanes
    /// opened since, returning the timeline byte-for-byte to its marked
    /// reservation state. Counters are not rewound — they keep counting
    /// work actually performed.
    pub fn rollback(&mut self, mark: TimelineMark) {
        while self.journal.len() > mark.journal_len {
            let entry = self.journal.pop().expect("len checked");
            self.group_mut(entry.lane.kind)[entry.lane.index].unreserve(entry.pos, entry.prev_free);
        }
        let spare = &mut self.spare;
        for (group, want) in [
            (&mut self.cores, mark.cores),
            (&mut self.regions, mark.regions),
            (&mut self.controllers, mark.controllers),
        ] {
            while group.len() > want {
                let mut lane = group.pop().expect("len checked");
                debug_assert!(
                    lane.is_empty(),
                    "reservations on a lane opened after the mark must \
                     already be journal-rolled-back"
                );
                lane.clear();
                spare.push(lane);
            }
        }
        // Checkpoints taken after this point in the journal no longer
        // describe reachable state.
        self.checkpoints
            .retain(|(_, m)| m.journal_len <= mark.journal_len);
    }

    /// Opens a named checkpoint over the current journal position. Names
    /// form a stack: a later [`Timeline::rollback_to`] or
    /// [`Timeline::commit`] addresses the **innermost** checkpoint with
    /// that name. Returns the underlying mark for callers that also want
    /// anonymous rollback.
    pub fn checkpoint(&mut self, name: &str) -> TimelineMark {
        let mark = self.mark();
        self.checkpoints.push((name.to_string(), mark));
        mark
    }

    /// Edits (successful reservations) journaled since the innermost
    /// checkpoint named `name`, or `None` if no such checkpoint is open.
    pub fn edits_since(&self, name: &str) -> Option<usize> {
        self.checkpoints
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, m)| self.journal.len() - m.journal_len)
    }

    /// Rolls back to the innermost checkpoint named `name` (undoing every
    /// reservation journaled since, closing lanes opened since, and
    /// dropping that checkpoint plus any opened after it). Returns `false`
    /// when no such checkpoint is open.
    pub fn rollback_to(&mut self, name: &str) -> bool {
        let Some(i) = self.checkpoints.iter().rposition(|(n, _)| n == name) else {
            return false;
        };
        let (_, mark) = self.checkpoints[i];
        self.rollback(mark);
        self.checkpoints.truncate(i);
        true
    }

    /// Commits the innermost checkpoint named `name`: the reservations
    /// made since stay, and the checkpoint (plus any opened after it, now
    /// subsumed) is closed. Returns the number of edits committed, or
    /// `None` if no such checkpoint is open.
    pub fn commit(&mut self, name: &str) -> Option<usize> {
        let i = self.checkpoints.iter().rposition(|(n, _)| n == name)?;
        let edits = self.journal.len() - self.checkpoints[i].1.journal_len;
        self.checkpoints.truncate(i);
        Some(edits)
    }

    /// Partial-suffix rollback on one lane: discards every reservation on
    /// `id` starting at or after `t` (see [`Lane::rollback_after`]) and
    /// returns how many windows were removed.
    ///
    /// This *cuts history*: removed windows may sit anywhere in the LIFO
    /// journal, so the journal and every open checkpoint are cleared — the
    /// timeline starts a fresh undo era. It is meant for the repair
    /// engine's "invalidate the suffix, re-place it" flow, not for
    /// interleaving with `mark`/`rollback` search.
    pub fn rollback_after(&mut self, id: LaneId, t: Time) -> usize {
        self.journal.clear();
        self.checkpoints.clear();
        self.group_mut(id.kind)[id.index].rollback_after(t)
    }
}

/// Greedily packs intervals onto `k` lanes: intervals are visited in order
/// of start tick (ties towards the lower input index) and each goes to the
/// lane that frees up first (ties towards the lower lane index), whose
/// clock then advances to the interval's end.
///
/// This is the shared controller-assignment rule: the ASAP executor uses
/// it to derive which of `k` reconfiguration controllers carried each
/// reconfiguration (the `Schedule` artifact records no controller ids),
/// and the Gantt/SVG renderers use the same rule so the drawn lanes match
/// the executor's serialization constraints. Returns the lane index per
/// input interval.
pub fn pack_lanes(intervals: &[TimeWindow], k: usize) -> Vec<usize> {
    let k = k.max(1);
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].min, i));
    let mut free: Vec<Time> = vec![0; k];
    let mut assignment = vec![0usize; intervals.len()];
    for i in order {
        let lane = (0..k).min_by_key(|&c| (free[c], c)).expect("k >= 1");
        assignment[i] = lane;
        free[lane] = free[lane].max(intervals[i].max);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(min: Time, max: Time) -> TimeWindow {
        TimeWindow::new(min, max)
    }

    #[test]
    fn reserve_keeps_windows_sorted_and_disjoint() {
        let mut lane = Lane::new();
        assert_eq!(lane.reserve(w(10, 20)), Ok(Some(0)));
        assert_eq!(lane.reserve(w(30, 40)), Ok(Some(1)));
        assert_eq!(lane.reserve(w(20, 30)), Ok(Some(1)), "touching is fine");
        assert_eq!(lane.windows(), &[w(10, 20), w(20, 30), w(30, 40)]);
        assert_eq!(lane.free_from(), 40);
        assert_eq!(lane.reserve(w(0, 5)), Ok(Some(0)));
        assert_eq!(lane.free_from(), 40);
    }

    #[test]
    fn reserve_reports_the_clashing_window() {
        let mut lane = Lane::new();
        lane.reserve(w(10, 20)).unwrap();
        lane.reserve(w(30, 40)).unwrap();
        assert_eq!(lane.reserve(w(15, 25)), Err(w(10, 20)));
        assert_eq!(lane.reserve(w(5, 11)), Err(w(10, 20)));
        assert_eq!(lane.reserve(w(25, 31)), Err(w(30, 40)));
        assert_eq!(lane.reserve(w(0, 100)), Err(w(10, 20)), "first clash");
        assert_eq!(lane.len(), 2, "failed reservations change nothing");
    }

    #[test]
    fn empty_windows_store_nothing_but_advance_the_clock() {
        let mut lane = Lane::new();
        lane.reserve(w(10, 20)).unwrap();
        assert_eq!(lane.reserve(w(15, 15)), Ok(None));
        assert_eq!(lane.len(), 1);
        assert!(lane.is_free(w(15, 15)));
        assert_eq!(lane.free_from(), 20);
        // A zero-length reservation past the drain bumps the clock, the
        // way the legacy `icap_free[ctrl] = s + 0` clocks behaved.
        assert_eq!(lane.reserve(w(30, 30)), Ok(None));
        assert_eq!(lane.free_from(), 30);
        assert_eq!(lane.len(), 1);
    }

    #[test]
    fn rollback_restores_clock_bumps_from_empty_reservations() {
        let mut tl = Timeline::with_lanes(0, 0, 1);
        let c = LaneId::controller(0);
        tl.reserve(c, w(0, 10)).unwrap();
        let mark = tl.mark();
        tl.reserve(c, w(25, 25)).unwrap();
        assert_eq!(tl.free_from(c), 25);
        tl.rollback(mark);
        assert_eq!(tl.free_from(c), 10);
    }

    #[test]
    fn controller_next_free_is_clock_arbitration() {
        let mut tl = Timeline::with_lanes(0, 0, 2);
        tl.reserve(LaneId::controller(0), w(0, 10)).unwrap();
        tl.reserve(LaneId::controller(0), w(20, 30)).unwrap();
        // The gap on controller 0 is invisible to clock arbitration.
        assert_eq!(tl.controller_next_free(), (1, 0));
        tl.reserve(LaneId::controller(1), w(0, 40)).unwrap();
        assert_eq!(tl.controller_next_free(), (0, 30));
    }

    #[test]
    fn controller_range_queries_restrict_to_lane_group() {
        // Two fabrics x two controllers: fabric 0 owns lanes 0-1, fabric 1
        // owns lanes 2-3.
        let mut tl = Timeline::with_lanes(0, 0, 4);
        tl.reserve(LaneId::controller(0), w(0, 10)).unwrap();
        tl.reserve(LaneId::controller(1), w(0, 20)).unwrap();
        tl.reserve(LaneId::controller(2), w(0, 5)).unwrap();
        // The full-range variants equal the classic queries.
        assert_eq!(tl.controller_next_free_in(0, 4), tl.controller_next_free());
        assert_eq!(
            tl.controller_first_fit_in(0, 4, 0, 5),
            tl.controller_first_fit(0, 5)
        );
        // Fabric 0 never sees fabric 1's idle lanes.
        assert_eq!(tl.controller_next_free_in(0, 2), (0, 10));
        assert_eq!(tl.controller_next_free_in(2, 2), (3, 0));
        assert_eq!(tl.controller_first_fit_in(0, 2, 0, 5), (0, 10));
        assert_eq!(tl.controller_first_fit_in(2, 2, 0, 5), (3, 0));
    }

    #[test]
    fn earliest_fit_matches_linear_gap_scan() {
        let mut lane = Lane::new();
        lane.reserve(w(10, 20)).unwrap();
        lane.reserve(w(25, 30)).unwrap();
        // The cases pinned by the old PartialSchedule::icap_first_fit test.
        assert_eq!(lane.earliest_fit(0, 5), 0);
        assert_eq!(lane.earliest_fit(0, 12), 30);
        assert_eq!(lane.earliest_fit(12, 5), 20);
        assert_eq!(lane.earliest_fit(12, 6), 30);
        assert_eq!(lane.earliest_fit(40, 100), 40);
        // Zero-duration queries still slide past an in-progress window
        // (matches the legacy linear scan: the candidate is bumped to the
        // end of any window it lands inside before the fit test can pass).
        assert_eq!(lane.earliest_fit(12, 0), 20);
        assert_eq!(lane.earliest_fit(21, 0), 21);
    }

    #[test]
    fn timeline_reserve_and_rollback_roundtrip() {
        let mut tl = Timeline::with_lanes(1, 0, 1);
        tl.reserve(LaneId::core(0), w(0, 10)).unwrap();
        let mark = tl.mark();
        tl.reserve(LaneId::core(0), w(10, 20)).unwrap();
        let r = tl.add_lane(LaneKind::Region);
        tl.reserve(r, w(5, 9)).unwrap();
        tl.reserve(LaneId::controller(0), w(3, 4)).unwrap();
        assert_eq!(tl.free_from(LaneId::core(0)), 20);
        assert_eq!(tl.lanes(LaneKind::Region), 1);

        tl.rollback(mark);
        assert_eq!(tl.lane(LaneId::core(0)).windows(), &[w(0, 10)]);
        assert_eq!(tl.free_from(LaneId::core(0)), 10);
        assert_eq!(tl.lanes(LaneKind::Region), 0);
        assert!(tl.lane(LaneId::controller(0)).is_empty());
        // Rolled-back space is reusable.
        tl.reserve(LaneId::core(0), w(10, 15)).unwrap();
        assert_eq!(tl.free_from(LaneId::core(0)), 15);
    }

    #[test]
    fn rollback_restores_mid_lane_insertions() {
        let mut tl = Timeline::with_lanes(0, 0, 1);
        let c = LaneId::controller(0);
        tl.reserve(c, w(10, 20)).unwrap();
        tl.reserve(c, w(30, 40)).unwrap();
        let mark = tl.mark();
        // A prefetch into the gap inserts in the middle of the lane.
        tl.reserve(c, w(20, 25)).unwrap();
        assert_eq!(tl.lane(c).windows(), &[w(10, 20), w(20, 25), w(30, 40)]);
        tl.rollback(mark);
        assert_eq!(tl.lane(c).windows(), &[w(10, 20), w(30, 40)]);
        assert_eq!(tl.free_from(c), 40);
    }

    #[test]
    fn controller_first_fit_prefers_earliest_then_lowest() {
        let mut tl = Timeline::with_lanes(0, 0, 2);
        tl.reserve(LaneId::controller(0), w(0, 50)).unwrap();
        tl.reserve(LaneId::controller(1), w(0, 10)).unwrap();
        assert_eq!(tl.controller_first_fit(0, 5), (1, 10));
        let mut tl = Timeline::with_lanes(0, 0, 2);
        tl.reserve(LaneId::controller(1), w(0, 10)).unwrap();
        assert_eq!(tl.controller_first_fit(0, 5), (0, 0));
    }

    #[test]
    fn reset_clears_lanes_and_counters() {
        let mut tl = Timeline::with_lanes(2, 1, 1);
        tl.reserve(LaneId::core(1), w(0, 5)).unwrap();
        tl.earliest_fit(LaneId::core(1), 0, 1);
        assert_eq!(tl.stats().reservations, 1);
        assert_eq!(tl.stats().gap_queries, 1);
        tl.reset(1, 0, 1);
        assert_eq!(tl.lanes(LaneKind::Core), 1);
        assert_eq!(tl.lanes(LaneKind::Region), 0);
        assert!(tl.lane(LaneId::core(0)).is_empty());
        assert_eq!(tl.stats(), TimelineStats::default());
    }

    #[test]
    fn pack_lanes_matches_greedy_argmin() {
        // Three intervals, two lanes: [0,10) -> lane 0, [0,5) -> lane 1,
        // [5,8) -> lane 1 (frees first).
        let packed = pack_lanes(&[w(0, 10), w(0, 5), w(5, 8)], 2);
        assert_eq!(packed, vec![0, 1, 1]);
        // Single lane: everything on lane 0.
        assert_eq!(pack_lanes(&[w(0, 10), w(20, 30)], 1), vec![0, 0]);
        // Input order is preserved in the output indexing.
        let packed = pack_lanes(&[w(20, 30), w(0, 10)], 2);
        assert_eq!(packed, vec![1, 0]);
        assert_eq!(pack_lanes(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn lane_rollback_after_truncates_the_suffix() {
        let mut lane = Lane::new();
        lane.reserve(w(0, 10)).unwrap();
        lane.reserve(w(12, 20)).unwrap();
        lane.reserve(w(25, 30)).unwrap();
        // Cut at 12: the window starting exactly at the cut goes too.
        assert_eq!(lane.rollback_after(12), 2);
        assert_eq!(lane.windows(), &[w(0, 10)]);
        assert_eq!(lane.free_from(), 10);
        // Straddling windows survive whole and keep the lane busy.
        let mut lane = Lane::new();
        lane.reserve(w(0, 20)).unwrap();
        lane.reserve(w(20, 30)).unwrap();
        assert_eq!(lane.rollback_after(10), 1);
        assert_eq!(lane.windows(), &[w(0, 20)]);
        assert_eq!(lane.free_from(), 20);
        // A clock bump past the cut is forgotten down to the cut.
        let mut lane = Lane::new();
        lane.reserve(w(0, 5)).unwrap();
        lane.reserve(w(40, 40)).unwrap();
        assert_eq!(lane.free_from(), 40);
        assert_eq!(lane.rollback_after(10), 0);
        assert_eq!(lane.free_from(), 10);
        // Cutting past the drain is a no-op.
        assert_eq!(lane.rollback_after(50), 0);
        assert_eq!(lane.free_from(), 10);
    }

    #[test]
    fn named_checkpoints_commit_and_rollback() {
        let mut tl = Timeline::with_lanes(1, 0, 1);
        tl.reserve(LaneId::core(0), w(0, 10)).unwrap();
        tl.checkpoint("solve");
        tl.reserve(LaneId::core(0), w(10, 20)).unwrap();
        tl.checkpoint("trial");
        tl.reserve(LaneId::core(0), w(20, 30)).unwrap();
        assert_eq!(tl.edits_since("solve"), Some(2));
        assert_eq!(tl.edits_since("trial"), Some(1));
        assert!(tl.rollback_to("trial"));
        assert_eq!(tl.lane(LaneId::core(0)).windows(), &[w(0, 10), w(10, 20)]);
        assert_eq!(tl.edits_since("trial"), None);
        // Committing keeps the reservations and closes the checkpoint.
        assert_eq!(tl.commit("solve"), Some(1));
        assert_eq!(tl.commit("solve"), None);
        assert!(!tl.rollback_to("solve"));
        assert_eq!(tl.lane(LaneId::core(0)).windows(), &[w(0, 10), w(10, 20)]);
    }

    #[test]
    fn named_checkpoints_nest_and_anonymous_rollback_prunes_them() {
        let mut tl = Timeline::with_lanes(1, 0, 0);
        let outer = tl.mark();
        tl.reserve(LaneId::core(0), w(0, 5)).unwrap();
        tl.checkpoint("inner");
        tl.reserve(LaneId::core(0), w(5, 9)).unwrap();
        // Rolling back past a named checkpoint invalidates it.
        tl.rollback(outer);
        assert!(!tl.rollback_to("inner"));
        assert!(tl.lane(LaneId::core(0)).is_empty());
        // Shadowing: two checkpoints with one name, innermost wins.
        tl.checkpoint("c");
        tl.reserve(LaneId::core(0), w(0, 5)).unwrap();
        tl.checkpoint("c");
        tl.reserve(LaneId::core(0), w(5, 9)).unwrap();
        assert!(tl.rollback_to("c"));
        assert_eq!(tl.lane(LaneId::core(0)).windows(), &[w(0, 5)]);
        assert!(tl.rollback_to("c"));
        assert!(tl.lane(LaneId::core(0)).is_empty());
    }

    #[test]
    fn timeline_rollback_after_cuts_history() {
        let mut tl = Timeline::with_lanes(2, 0, 0);
        tl.reserve(LaneId::core(0), w(0, 10)).unwrap();
        tl.reserve(LaneId::core(0), w(15, 25)).unwrap();
        tl.reserve(LaneId::core(1), w(0, 8)).unwrap();
        tl.checkpoint("stale");
        assert_eq!(tl.rollback_after(LaneId::core(0), 12), 1);
        assert_eq!(tl.lane(LaneId::core(0)).windows(), &[w(0, 10)]);
        assert_eq!(tl.free_from(LaneId::core(0)), 10);
        // The other lane is untouched; the undo era restarted.
        assert_eq!(tl.lane(LaneId::core(1)).windows(), &[w(0, 8)]);
        assert!(!tl.rollback_to("stale"));
        // The freed suffix is reusable immediately.
        tl.reserve(LaneId::core(0), w(10, 12)).unwrap();
        assert_eq!(tl.free_from(LaneId::core(0)), 12);
    }

    #[test]
    fn conflict_display_names_the_lane() {
        let c = Conflict {
            lane: LaneId::controller(2),
            attempted: w(1, 5),
            existing: w(0, 3),
        };
        assert_eq!(
            c.to_string(),
            "reservation [1, 5) on controller 2 clashes with [0, 3)"
        );
    }
}
