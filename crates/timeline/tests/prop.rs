//! Property-based differential tests: the timeline kernel against a naive
//! Vec-scan reference model.
//!
//! The reference model keeps every committed window in an unsorted `Vec`
//! and answers conflict and gap queries by linear scan; rollback snapshots
//! are whole-model clones. The kernel must agree with it verdict-for-
//! verdict (which reservations are accepted) and value-for-value
//! (`free_from`, `earliest_fit`) across random interleavings of reserve,
//! gap-query, mark, rollback and partial-suffix `rollback_after`
//! operations.

use proptest::prelude::*;

use prfpga_timeline::{pack_lanes, LaneId, LaneKind, Time, TimeWindow, Timeline};

/// Naive single-lane model: unsorted windows, linear scans everywhere.
#[derive(Clone, Default)]
struct NaiveLane {
    windows: Vec<TimeWindow>,
    free_from: Time,
}

impl NaiveLane {
    /// Accepts `w` unless it shares a tick with a committed window. Empty
    /// windows store nothing but still advance the availability clock.
    fn reserve(&mut self, w: TimeWindow) -> bool {
        if self.windows.iter().any(|x| x.intersects(&w)) {
            return false;
        }
        if !w.is_empty() {
            self.windows.push(w);
        }
        self.free_from = self.free_from.max(w.max);
        true
    }

    /// Partial-suffix rollback, mirrored from the kernel's contract:
    /// windows starting at or after `t` vanish; the clock is re-derived
    /// from the survivors unless an unstored zero-length bump holds it
    /// past every window, in which case it clamps to `min(free_from, t)`
    /// (never below a straddling survivor's end).
    fn rollback_after(&mut self, t: Time) {
        let tail_before = self.windows.iter().map(|w| w.max).max().unwrap_or(0);
        let bumped = self.free_from > tail_before;
        self.windows.retain(|w| w.min < t);
        let tail = self.windows.iter().map(|w| w.max).max().unwrap_or(0);
        self.free_from = if bumped {
            self.free_from.min(t).max(tail)
        } else {
            tail
        };
    }

    /// Earliest start >= `release` for `duration`, by trying every start
    /// that is either the release itself or the end of some window.
    fn earliest_fit(&self, release: Time, duration: Time) -> Time {
        let mut starts: Vec<Time> = self
            .windows
            .iter()
            .map(|w| w.max)
            .filter(|&e| e > release)
            .collect();
        starts.push(release);
        starts.sort_unstable();
        for s in starts {
            let probe = TimeWindow::from_start(s, duration);
            // Zero-length probes may sit on a window boundary (including
            // its start) but not strictly inside it — the contract the
            // kernel inherits from the legacy linear scans it replaced.
            let blocked = self
                .windows
                .iter()
                .any(|w| w.intersects(&probe) || (duration == 0 && w.min < s && s < w.max));
            if !blocked {
                return s;
            }
        }
        unreachable!("a start past every window always fits")
    }
}

#[derive(Debug, Clone)]
enum Op {
    Reserve {
        lane: usize,
        start: Time,
        dur: Time,
    },
    GapQuery {
        lane: usize,
        release: Time,
        dur: Time,
    },
    Mark,
    Rollback,
    RollbackAfter {
        lane: usize,
        t: Time,
    },
}

fn ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    let op = (0u8..9, 0usize..4, 0u64..120, 0u64..25).prop_map(|(tag, lane, a, b)| match tag {
        0..=3 => Op::Reserve {
            lane,
            start: a,
            dur: b,
        },
        4 | 5 => Op::GapQuery {
            lane,
            release: a,
            dur: b,
        },
        6 => Op::Mark,
        7 => Op::Rollback,
        _ => Op::RollbackAfter { lane, t: a },
    });
    (1usize..5, proptest::collection::vec(op, 1..60))
}

proptest! {
    /// Random reserve / gap-query / mark / rollback interleavings agree
    /// with the naive model on every observable.
    #[test]
    fn kernel_agrees_with_naive_model((lanes, script) in ops()) {
        let mut tl = Timeline::with_lanes(0, 0, lanes);
        let mut naive: Vec<NaiveLane> = vec![NaiveLane::default(); lanes];
        // Stack of (kernel mark, naive snapshot) pairs.
        let mut marks = Vec::new();

        for (step, op) in script.into_iter().enumerate() {
            match op {
                Op::Reserve { lane, start, dur } => {
                    let lane = lane % lanes;
                    let w = TimeWindow::from_start(start, dur);
                    let kernel_ok = tl.reserve(LaneId::controller(lane), w).is_ok();
                    let naive_ok = naive[lane].reserve(w);
                    prop_assert_eq!(kernel_ok, naive_ok, "step {}: accept verdict", step);
                }
                Op::GapQuery { lane, release, dur } => {
                    let lane = lane % lanes;
                    prop_assert_eq!(
                        tl.earliest_fit(LaneId::controller(lane), release, dur),
                        naive[lane].earliest_fit(release, dur),
                        "step {}: earliest_fit({}, {})", step, release, dur
                    );
                }
                Op::Mark => marks.push((tl.mark(), naive.clone())),
                Op::Rollback => {
                    if let Some((mark, snapshot)) = marks.pop() {
                        tl.rollback(mark);
                        naive = snapshot;
                    }
                }
                Op::RollbackAfter { lane, t } => {
                    let lane = lane % lanes;
                    tl.rollback_after(LaneId::controller(lane), t);
                    naive[lane].rollback_after(t);
                    // Partial-suffix rollback cuts history: outstanding
                    // marks are invalidated on both sides.
                    marks.clear();
                }
            }
            // Full-state agreement after every operation.
            for (c, model) in naive.iter().enumerate() {
                let lane = tl.lane(LaneId::controller(c));
                prop_assert_eq!(
                    lane.free_from(),
                    model.free_from,
                    "step {}: free_from of lane {}", step, c
                );
                let mut expect = model.windows.clone();
                expect.sort_unstable_by_key(|w| w.min);
                prop_assert_eq!(lane.windows(), expect.as_slice(), "step {}: lane {}", step, c);
            }
        }
    }

    /// `earliest_fit` really is the earliest: the reported start fits, and
    /// no start in `[release, reported)` does.
    #[test]
    fn earliest_fit_is_minimal(
        windows in proptest::collection::vec((0u64..100, 1u64..20), 0..12),
        release in 0u64..110,
        dur in 1u64..25,
    ) {
        let mut tl = Timeline::with_lanes(0, 0, 1);
        for (start, d) in windows {
            let _ = tl.reserve(LaneId::controller(0), TimeWindow::from_start(start, d));
        }
        let lane = LaneId::controller(0);
        let fit = tl.earliest_fit(lane, release, dur);
        prop_assert!(fit >= release);
        prop_assert!(tl.lane(lane).is_free(TimeWindow::from_start(fit, dur)));
        for s in release..fit {
            prop_assert!(
                !tl.lane(lane).is_free(TimeWindow::from_start(s, dur)),
                "start {} < {} also fits", s, fit
            );
        }
    }

    /// `pack_lanes` produces a feasible packing (no two intervals assigned
    /// to the same lane intersect) that matches the greedy argmin rule.
    #[test]
    fn pack_lanes_is_feasible_and_greedy(
        intervals in proptest::collection::vec((0u64..80, 1u64..20), 0..20),
        k in 1usize..4,
    ) {
        let intervals: Vec<TimeWindow> = intervals
            .into_iter()
            .map(|(s, d)| TimeWindow::from_start(s, d))
            .collect();
        let packed = pack_lanes(&intervals, k);
        prop_assert_eq!(packed.len(), intervals.len());
        prop_assert!(packed.iter().all(|&c| c < k));

        // Greedy reference: visit by (start, index), argmin (free, lane).
        let mut order: Vec<usize> = (0..intervals.len()).collect();
        order.sort_by_key(|&i| (intervals[i].min, i));
        let mut free = vec![0u64; k];
        for i in order {
            let lane = (0..k).min_by_key(|&c| (free[c], c)).unwrap();
            prop_assert_eq!(packed[i], lane, "interval {} diverges from greedy", i);
            free[lane] = free[lane].max(intervals[i].max);
        }
    }

    /// Mark/rollback composes with lane creation: lanes added after the
    /// mark vanish, lanes present before keep exactly their pre-mark state.
    #[test]
    fn rollback_closes_lanes_opened_after_mark(
        pre in proptest::collection::vec((0u64..50, 1u64..10), 0..6),
        post in proptest::collection::vec((0u64..50, 1u64..10), 0..6),
        extra_lanes in 0usize..3,
    ) {
        let mut tl = Timeline::with_lanes(0, 1, 0);
        for (s, d) in pre {
            let _ = tl.reserve(LaneId::region(0), TimeWindow::from_start(s, d));
        }
        let before: Vec<TimeWindow> = tl.lane(LaneId::region(0)).windows().to_vec();
        let mark = tl.mark();

        for _ in 0..extra_lanes {
            let id = tl.add_lane(LaneKind::Region);
            let _ = tl.reserve(id, TimeWindow::from_start(0, 5));
        }
        for (s, d) in post {
            let _ = tl.reserve(LaneId::region(0), TimeWindow::from_start(s, d));
        }

        tl.rollback(mark);
        prop_assert_eq!(tl.lanes(LaneKind::Region), 1);
        prop_assert_eq!(tl.lane(LaneId::region(0)).windows(), before.as_slice());
    }
}
