//! Design-space exploration with the fast deterministic scheduler.
//!
//! §VI motivates PA as the tool that "allows the designer to obtain a fast
//! evaluation of the design performance on the target architecture". This
//! example does exactly that: one application, swept across three Zynq
//! parts and several core counts, yielding a makespan matrix in
//! milliseconds of wall-clock.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use std::time::Instant;

use prfpga::gen::{GraphConfig, TaskGraphGenerator};
use prfpga::model::Device;
use prfpga::prelude::*;

fn main() {
    let devices = [Device::xc7z010(), Device::xc7z020(), Device::xc7z045()];
    let core_counts = [1usize, 2, 4];

    // One fixed 40-task application (same seed for every design point).
    let app = |arch: Architecture| {
        TaskGraphGenerator::new(0xD5E).generate("dse_app", &GraphConfig::standard(40), arch)
    };

    println!("40-task application, PA scheduler, makespan in ticks (µs):\n");
    print!("{:>10}", "device");
    for &cores in &core_counts {
        print!("{:>12}", format!("{cores} core(s)"));
    }
    println!();

    let wall = Instant::now();
    let mut evaluations = 0usize;
    for device in &devices {
        print!("{:>10}", device.name);
        for &cores in &core_counts {
            let instance = app(Architecture::new(cores, device.clone()));
            let schedule = PaScheduler::new(SchedulerConfig::default())
                .schedule(&instance)
                .expect("feasible schedule");
            validate_schedule(&instance, &schedule).expect("valid");
            evaluations += 1;
            print!("{:>12}", schedule.makespan());
        }
        println!();
    }
    println!(
        "\n{} design points evaluated in {:.2} ms total — fast enough for interactive exploration",
        evaluations,
        wall.elapsed().as_secs_f64() * 1e3
    );

    // The expected monotonicity: a bigger fabric cannot hurt.
    let small = PaScheduler::new(SchedulerConfig::default())
        .schedule(&app(Architecture::new(2, Device::xc7z010())))
        .unwrap()
        .makespan();
    let large = PaScheduler::new(SchedulerConfig::default())
        .schedule(&app(Architecture::new(2, Device::xc7z045())))
        .unwrap()
        .makespan();
    println!(
        "xc7z010 -> xc7z045 at 2 cores: {small} -> {large} ticks ({}% of the small-part makespan)",
        large * 100 / small.max(1)
    );
}
