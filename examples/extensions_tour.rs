//! Tour of the §VIII future-work extensions implemented in this
//! repository, on one realistic instance:
//!
//! 1. **module reuse** — consecutive tasks sharing a hardware
//!    implementation skip the reconfiguration between them;
//! 2. **communication costs** — per-edge transfer times charged when
//!    producer and consumer are not co-located;
//! 3. **multiple reconfiguration controllers** — the generalization of the
//!    paper's ref. \[8\] (the base model serializes everything on one ICAP).
//!
//! Run with: `cargo run --release --example extensions_tour`

use prfpga::gen::{GraphConfig, TaskGraphGenerator};
use prfpga::prelude::*;

fn pa(config: SchedulerConfig, inst: &ProblemInstance, label: &str) -> Time {
    let s = PaScheduler::new(config)
        .schedule(inst)
        .expect("schedulable");
    validate_schedule(inst, &s).expect("valid");
    println!(
        "  {label:32} makespan {:>7} ticks | {:>2} regions, {:>2} reconfigurations",
        s.makespan(),
        s.regions.len(),
        s.reconfigurations.len()
    );
    s.makespan()
}

fn main() {
    // A 40-task application with a healthy dose of shared implementations
    // (module reuse needs them) on the standard evaluation platform.
    let mut cfg = GraphConfig::standard(40);
    cfg.impl_profile.share_impl_pct = 35;
    let base = TaskGraphGenerator::new(0xE47).generate(
        "extensions_tour",
        &cfg,
        Architecture::zedboard_pr(),
    );

    println!("baseline (the paper's model):");
    let baseline = pa(SchedulerConfig::default(), &base, "PA");

    println!("\n1) module reuse (skip reconfigurations between shared modules):");
    let reuse = pa(
        SchedulerConfig {
            module_reuse: true,
            ..Default::default()
        },
        &base,
        "PA + module reuse",
    );
    println!(
        "     -> {}{}%",
        if reuse <= baseline { "-" } else { "+" },
        (baseline.abs_diff(reuse)) * 100 / baseline.max(1)
    );

    println!("\n2) explicit communication costs (50..800 ticks per edge):");
    let comm_inst = TaskGraphGenerator::new(0xE47).generate(
        "extensions_tour_comm",
        &GraphConfig {
            comm_cost_range: (50, 800),
            ..cfg.clone()
        },
        Architecture::zedboard_pr(),
    );
    pa(
        SchedulerConfig::default(),
        &comm_inst,
        "PA under comm costs",
    );
    println!("     (costs vanish between co-located tasks; the validator enforces the rest)");

    println!("\n3) more reconfiguration controllers:");
    for k in [1usize, 2, 4] {
        let mut inst = base.clone();
        inst.architecture.num_reconfig_controllers = k;
        pa(
            SchedulerConfig::default(),
            &inst,
            &format!("PA with {k} controller(s)"),
        );
    }
    println!("\nAll schedules above were checked by the independent validator.");
}
