//! Quickstart: the paper's Figure-1 story, end to end.
//!
//! A three-task application where task `t1` has two hardware variants:
//! a fast-but-huge one and a slower-but-small ("resource-efficient") one.
//! Greedy fastest-first selection would pick the huge variant, monopolize
//! the fabric, and serialize everything behind reconfigurations; PA's cost
//! metric (eq. 3) picks the efficient variant so `t2` and `t3` run in
//! parallel in their own regions.
//!
//! Run with: `cargo run --release --example quickstart`

use prfpga::prelude::*;
use prfpga::sim::render_gantt;

fn main() {
    // --- Architecture: one core + a small fabric (1000 CLB-equivalents,
    // no floorplan geometry to keep the toy readable). -------------------
    let device = prfpga::model::Device::tiny_test(ResourceVec::new(1000, 0, 0), 1);
    let arch = Architecture::new(1, device);

    // --- Implementations --------------------------------------------------
    let mut impls = ImplPool::new();
    // t1: the interesting task. Software is painful; hardware comes as
    // "fast & huge" (800 CLB) or "efficient" (250 CLB, 1.5x slower).
    let t1_sw = impls.add(Implementation::software("t1_sw", 20_000));
    let t1_fast = impls.add(Implementation::hardware(
        "t1_fast",
        1_000,
        ResourceVec::new(800, 0, 0),
    ));
    let t1_eff = impls.add(Implementation::hardware(
        "t1_eff",
        1_500,
        ResourceVec::new(250, 0, 0),
    ));
    // t2 and t3: single hardware variant each (300 CLB).
    let t2_sw = impls.add(Implementation::software("t2_sw", 20_000));
    let t2_hw = impls.add(Implementation::hardware(
        "t2_hw",
        2_000,
        ResourceVec::new(300, 0, 0),
    ));
    let t3_sw = impls.add(Implementation::software("t3_sw", 20_000));
    let t3_hw = impls.add(Implementation::hardware(
        "t3_hw",
        2_200,
        ResourceVec::new(300, 0, 0),
    ));

    // --- Task graph: t1 -> t2, t1 -> t3 ------------------------------------
    let mut graph = TaskGraph::new();
    let t1 = graph.add_task("t1", vec![t1_sw, t1_fast, t1_eff]);
    let t2 = graph.add_task("t2", vec![t2_sw, t2_hw]);
    let t3 = graph.add_task("t3", vec![t3_sw, t3_hw]);
    graph.add_edge(t1, t2);
    graph.add_edge(t1, t3);

    let instance =
        ProblemInstance::new("figure1", arch, graph, impls).expect("well-formed instance");

    // --- Schedule with PA ---------------------------------------------------
    let schedule = PaScheduler::new(SchedulerConfig::default())
        .schedule(&instance)
        .expect("feasible schedule");
    validate_schedule(&instance, &schedule).expect("independently validated");

    let chosen = schedule.assignment(t1).impl_id;
    println!(
        "PA selected `{}` for t1 (the resource-efficient variant)",
        instance.impls.get(chosen).name
    );
    assert_eq!(chosen, t1_eff, "eq. 3 prefers the efficient implementation");

    println!(
        "makespan: {} ticks with {} regions\n",
        schedule.makespan(),
        schedule.regions.len()
    );
    println!("{}", render_gantt(&instance, &schedule, 80));

    // --- What the greedy choice would have cost ----------------------------
    // Force the fast implementation by deleting the efficient variant.
    let mut greedy = instance.clone();
    greedy.graph.tasks[t1.index()]
        .impls
        .retain(|&i| i != t1_eff);
    let greedy_schedule = PaScheduler::new(SchedulerConfig::default())
        .schedule(&greedy)
        .expect("feasible schedule");
    validate_schedule(&greedy, &greedy_schedule).expect("valid");
    println!(
        "with only the fast/huge variant available the makespan grows from {} to {} ticks",
        schedule.makespan(),
        greedy_schedule.makespan()
    );
    assert!(greedy_schedule.makespan() > schedule.makespan());
}
