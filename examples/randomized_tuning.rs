//! Anytime behaviour of the randomized scheduler PA-R.
//!
//! Reproduces the paper's Figure-6 methodology on one instance: run PA-R
//! with growing budgets and watch the best schedule improve, then compare
//! the single-thread search against the crossbeam-parallel variant.
//!
//! Run with: `cargo run --release --example randomized_tuning`

use std::time::{Duration, Instant};

use prfpga::gen::{GraphConfig, TaskGraphGenerator};
use prfpga::prelude::*;
use prfpga::sched::randomized::PaRResult;

fn main() {
    let instance = TaskGraphGenerator::new(0x7E57).generate(
        "tuning_app",
        &GraphConfig::standard(60),
        Architecture::zedboard(),
    );

    // Reference point: the deterministic PA.
    let pa = PaScheduler::new(SchedulerConfig::default())
        .schedule(&instance)
        .unwrap();
    validate_schedule(&instance, &pa).expect("valid");
    println!(
        "PA (deterministic, one shot): makespan {} ticks\n",
        pa.makespan()
    );

    // Anytime curve: fixed iteration budgets, fixed seed -> reproducible.
    println!("PA-R anytime curve (single thread):");
    println!(
        "{:>12} {:>12} {:>14}",
        "iterations", "makespan", "improvements"
    );
    for iters in [1usize, 4, 16, 64] {
        let cfg = SchedulerConfig {
            max_iterations: iters,
            time_budget: Duration::from_secs(600),
            ..Default::default()
        };
        let r: PaRResult = PaRScheduler::new(cfg).schedule_detailed(&instance).unwrap();
        validate_schedule(&instance, &r.schedule).expect("valid");
        println!(
            "{:>12} {:>12} {:>14}",
            iters,
            r.schedule.makespan(),
            r.trace.len()
        );
    }

    // The full improvement trace for one longer run.
    let cfg = SchedulerConfig {
        max_iterations: 64,
        time_budget: Duration::from_secs(600),
        ..Default::default()
    };
    let r = PaRScheduler::new(cfg).schedule_detailed(&instance).unwrap();
    println!("\nimprovement trace of the 64-iteration run:");
    for p in &r.trace {
        println!(
            "  iteration {:>3} @ {:>8.3} ms -> makespan {}",
            p.iteration,
            p.elapsed.as_secs_f64() * 1e3,
            p.makespan
        );
    }

    // Parallel search: same wall-clock budget, more workers.
    println!("\nparallel PA-R (200 ms budget):");
    for threads in [1usize, 4] {
        let cfg = SchedulerConfig {
            time_budget: Duration::from_millis(200),
            max_iterations: 0,
            ..Default::default()
        };
        let t0 = Instant::now();
        let s = PaRScheduler::new(cfg)
            .schedule_parallel(&instance, threads)
            .unwrap();
        validate_schedule(&instance, &s).expect("valid");
        println!(
            "  {threads} thread(s): makespan {} ticks in {:.0} ms",
            s.makespan(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}
