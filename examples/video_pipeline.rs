//! A realistic embedded-vision pipeline on a ZedBoard.
//!
//! The motivating workload class of the paper: a frame-processing DAG
//! (demosaic → denoise → {edge extraction, optical flow} → fusion →
//! encode) where each stage has HLS-generated hardware variants at
//! several unroll factors plus an ARM software fallback. The example
//! schedules the pipeline with PA, PA-R, IS-1 and the HEFT baseline and
//! prints the resulting quality/runtime trade-off.
//!
//! Run with: `cargo run --release --example video_pipeline`

use std::time::{Duration, Instant};

use prfpga::prelude::*;
use prfpga::sim::{render_gantt, schedule_stats};

/// Adds one pipeline stage: software time in µs plus three hardware
/// variants along an unroll trade-off.
#[allow(clippy::too_many_arguments)]
fn stage(
    impls: &mut ImplPool,
    graph: &mut TaskGraph,
    name: &str,
    sw_us: Time,
    hw_us: Time,
    clb: u64,
    bram: u64,
    dsp: u64,
) -> TaskId {
    let sw = impls.add(Implementation::software(format!("{name}_arm"), sw_us));
    // Unroll x4: fastest, biggest. Unroll x2 and x1 scale time up, area down.
    let u4 = impls.add(Implementation::hardware(
        format!("{name}_u4"),
        hw_us,
        ResourceVec::new(clb * 2, bram * 2, dsp * 2),
    ));
    let u2 = impls.add(Implementation::hardware(
        format!("{name}_u2"),
        hw_us * 16 / 10,
        ResourceVec::new(clb, bram, dsp),
    ));
    let u1 = impls.add(Implementation::hardware(
        format!("{name}_u1"),
        hw_us * 26 / 10,
        ResourceVec::new(clb / 2 + 1, bram / 2 + 1, dsp / 2 + 1),
    ));
    graph.add_task(name, vec![sw, u4, u2, u1])
}

fn main() {
    let mut impls = ImplPool::new();
    let mut graph = TaskGraph::new();

    // Stage timings loosely modeled on 1080p kernels (µs per frame).
    let demosaic = stage(
        &mut impls, &mut graph, "demosaic", 18_000, 2_400, 900, 12, 8,
    );
    let denoise = stage(
        &mut impls, &mut graph, "denoise", 22_000, 3_000, 1_200, 18, 24,
    );
    let edges = stage(&mut impls, &mut graph, "edges", 15_000, 2_000, 800, 8, 16);
    let flow = stage(
        &mut impls,
        &mut graph,
        "optical_flow",
        35_000,
        4_500,
        1_600,
        24,
        48,
    );
    let fusion = stage(&mut impls, &mut graph, "fusion", 12_000, 1_800, 700, 10, 12);
    let encode = stage(
        &mut impls, &mut graph, "encode", 28_000, 3_600, 1_400, 30, 20,
    );
    // A couple of CPU-ish control stages without hardware variants.
    let stats = graph.add_task(
        "frame_stats",
        vec![impls.add(Implementation::software("frame_stats_arm", 1_500))],
    );
    let telemetry = graph.add_task(
        "telemetry",
        vec![impls.add(Implementation::software("telemetry_arm", 900))],
    );

    graph.add_edge(demosaic, denoise);
    graph.add_edge(denoise, edges);
    graph.add_edge(denoise, flow);
    graph.add_edge(edges, fusion);
    graph.add_edge(flow, fusion);
    graph.add_edge(fusion, encode);
    graph.add_edge(denoise, stats);
    graph.add_edge(stats, telemetry);
    graph.add_edge(telemetry, encode);

    let instance = ProblemInstance::new("video_pipeline", Architecture::zedboard(), graph, impls)
        .expect("well-formed instance");

    println!(
        "pipeline: {} stages, {} dependencies, on a {} + {} cores\n",
        instance.graph.len(),
        instance.graph.edges.len(),
        instance.architecture.device.name,
        instance.architecture.num_processors
    );

    let mut best: Option<(String, Schedule)> = None;
    let mut record = |name: &str, schedule: Schedule, elapsed: Duration| {
        validate_schedule(&instance, &schedule).expect("valid schedule");
        let st = schedule_stats(&instance, &schedule);
        println!(
            "{name:8} makespan {:>7} us | {} regions, {} reconfigs, controller busy {:>5} us | solved in {:>9.3} ms",
            st.makespan,
            st.num_regions,
            st.num_reconfigurations,
            st.reconf_busy,
            elapsed.as_secs_f64() * 1e3,
        );
        if best
            .as_ref()
            .is_none_or(|(_, b)| schedule.makespan() < b.makespan())
        {
            best = Some((name.to_string(), schedule));
        }
    };

    let t = Instant::now();
    let pa = PaScheduler::new(SchedulerConfig::default())
        .schedule(&instance)
        .unwrap();
    record("PA", pa, t.elapsed());

    let t = Instant::now();
    let par = PaRScheduler::new(SchedulerConfig {
        time_budget: Duration::from_millis(300),
        ..Default::default()
    })
    .schedule(&instance)
    .unwrap();
    record("PA-R", par, t.elapsed());

    let t = Instant::now();
    let is1 = IsKScheduler::with_k(1).schedule(&instance).unwrap();
    record("IS-1", is1, t.elapsed());

    let t = Instant::now();
    let heft = HeftScheduler::new().schedule(&instance).unwrap();
    record("HEFT", heft, t.elapsed());

    let (name, schedule) = best.expect("at least one schedule");
    println!("\nbest schedule ({name}):\n");
    println!("{}", render_gantt(&instance, &schedule, 100));
}
