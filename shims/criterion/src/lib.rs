//! Offline stand-in for the `criterion` crate.
//!
//! Implements the workspace's benchmarking surface — `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `bench_with_input`, and
//! [`Bencher::iter`] — as a small wall-clock harness: per benchmark it
//! calibrates an iteration count, takes `sample_size` samples, and prints
//! min/median/max. No statistical analysis, HTML reports, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace's benches already use).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` under the group's name.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Handed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: one untimed run, then size iteration count so a sample
    // lasts roughly a millisecond (bounded to keep total time sane).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or_default();
    let med = samples[samples.len() / 2];
    let max = samples.last().copied().unwrap_or_default();
    println!(
        "{name:<40} time: [{} {} {}] ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(med),
        fmt_duration(max),
        sample_size,
        iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, in either the struct-like form
/// (`name = ...; config = ...; targets = ...`) or the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
