//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the surface the workspace uses is provided: `crossbeam::thread::scope`
//! with spawn closures that receive the scope (so workers can spawn more
//! workers), built on `std::thread::scope`. A panicking child turns into an
//! `Err` from `scope`, matching crossbeam's contract.

pub mod thread {
    //! Scoped threads (`crossbeam::thread`).

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Boxed panic payload of a child thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// Result of a scope: `Err` when any spawned thread panicked.
    pub type Result<T> = std::result::Result<T, PanicPayload>;

    /// A scope handed to the closure of [`scope`]; spawn borrows from it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which scoped threads can be spawned; joins all of
    /// them before returning. Returns `Err` with the first panic payload if
    /// any child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let count = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| count.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_is_an_error() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
