//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it uses: poison-free [`Mutex`] and
//! [`RwLock`] wrappers over `std::sync`. Semantics match `parking_lot`
//! where it matters here: `lock()` returns the guard directly (a poisoned
//! std lock is transparently recovered, mirroring parking_lot's lack of
//! poisoning).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
