//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`strategy::Just`], [`collection::vec()`], [`option::of`], `ProptestConfig`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, acceptable here because every property
//! in this workspace is a qualitative invariant:
//!
//! - **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! - **Deterministic seeding.** Cases derive from a hash of the test name,
//!   so CI runs are reproducible; there is no persistence file.
//! - **Reject budget.** `prop_assume!` discards the case; when the global
//!   discard budget is exhausted the run stops early instead of failing.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from a strategy built from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            let outer = self.inner.sample(rng);
            (self.f)(outer).sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - 1 - self.start) as u64;
                    self.start + rng.below_inclusive(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64;
                    *self.start() + rng.below_inclusive(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - 1).wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below_inclusive(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = self.end().wrapping_sub(*self.start()) as u64;
                    self.start().wrapping_add(rng.below_inclusive(span) as $t)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// How many elements a [`vec()`] strategy generates.
    #[derive(Clone, Copy, Debug)]
    pub enum SizeRange {
        /// Exactly this many.
        Exact(usize),
        /// Uniform in `[lo, hi)`.
        Range(usize, usize),
        /// Uniform in `[lo, hi]`.
        RangeInclusive(usize, usize),
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            match self {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => {
                    if lo >= hi {
                        lo
                    } else {
                        lo + rng.below_inclusive((hi - 1 - lo) as u64) as usize
                    }
                }
                SizeRange::RangeInclusive(lo, hi) => {
                    lo + rng.below_inclusive(hi.saturating_sub(lo) as u64) as usize
                }
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::RangeInclusive(*r.start(), *r.end())
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies (`proptest::option`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s of values from an inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3:1 in favour of `Some`, like the real crate's default.
            if rng.below_inclusive(3) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG and the reject/fail bookkeeping.

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum number of `prop_assume!` discards before the run stops
        /// early.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!`-style failure: the property is violated.
        Fail(String),
        /// A `prop_assume!` rejection: the inputs don't apply.
        Reject,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded deterministically from `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound]` (inclusive).
        pub fn below_inclusive(&mut self, bound: u64) -> u64 {
            if bound == u64::MAX {
                return self.next_u64();
            }
            let n = bound + 1;
            let threshold = n.wrapping_neg() % n;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (n as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// FNV-1a, used to give every test a stable distinct seed.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs up to `config.cases` successful executions of `case`,
    /// panicking on the first property failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(fnv1a(name) ^ 0x5EED_1234_ABCD_EF01);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected >= config.max_global_rejects {
                        // The real crate errors out here; for this offline
                        // reproduction we accept the cases that did run.
                        eprintln!(
                            "proptest {name}: reject budget exhausted after \
                             {passed} passing case(s); stopping early"
                        );
                        return;
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: property failed on attempt {attempt} \
                         (after {passed} passing case(s)): {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over sampled inputs. See the crate docs for the
/// differences from the real macro (notably: no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a property inside `proptest!`, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 3u64..10,
            (a, b) in (0usize..5, 0i64..=4),
            v in crate::collection::vec(0u8..3, 2..6),
            o in crate::option::of(1u32..2),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0..=4).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
            if let Some(one) = o {
                prop_assert_eq!(one, 1);
            }
        }

        #[test]
        fn flat_map_uses_outer_value(pair in (1usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u64..100, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
