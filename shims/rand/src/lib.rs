//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API surface it actually uses: [`RngCore`]/[`Rng`]/[`RngExt`] with
//! `random`, `random_range` and `random_bool`, [`SeedableRng`] with the
//! PCG32-based `seed_from_u64` expansion, and the [`seq`] helpers
//! (`shuffle`, `choose`). Uniform integer ranges use rejection sampling
//! (Lemire-style widening multiply), so draws are unbiased.
//!
//! Determinism matters here, bit-for-bit identity with upstream `rand`
//! streams does not: every consumer in this workspace fixes its own seeds
//! and asserts qualitative properties.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for random number generators (rand 0.9+ keeps `Rng` as the
/// user-facing name; the methods live on [`RngExt`]).
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of `T` from the standard (full-width uniform)
    /// distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: IntoUniformRange<T>,
        Self: Sized,
    {
        let (lo, hi) = range.into_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}
impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable from full-width uniform bits (`rng.random()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly samplable over an inclusive range.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]`; panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased draw from `[0, span]` (inclusive) over 64-bit arithmetic using
/// widening-multiply rejection.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    // Lemire's method: accept x when the low product word clears the bias
    // zone of size (2^64 mod n).
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntoUniformRange<T> {
    /// Inclusive `(lo, hi)` bounds of the range; panics on empty ranges.
    fn into_bounds(self) -> (T, T);
}

macro_rules! impl_into_range {
    ($($t:ty),* $(,)?) => {$(
        impl IntoUniformRange<$t> for core::ops::Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample from empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}
impl_into_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators (`rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array in every implementor here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream, matching the
    /// structure of `rand_core`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let b = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related helpers (`rand::seq`).

    use super::{RngCore, UniformSample};

    /// In-place random permutation of mutable slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform choice from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_inclusive(rng, 0, self.len() - 1)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak generator, strong enough for the unit checks below.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 ^ (self.0 >> 29)
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let s: i64 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes all points"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        use seq::IndexedRandom;
        let mut rng = Counter(11);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
