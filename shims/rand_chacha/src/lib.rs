//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: a genuine ChaCha stream cipher with 8 rounds
//! (RFC 8439 quarter-round and block layout, zero nonce) driving the
//! [`rand::RngCore`] interface. Seeding and output are fully deterministic
//! for a given seed; the exact stream is not guaranteed to match upstream
//! `rand_chacha` word-for-word, which is fine for this workspace — all
//! consumers assert seeded reproducibility, not external golden streams.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const OUT_WORDS: usize = 16;

/// A ChaCha (8 rounds) random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher key, from the seed.
    key: [u32; 8],
    /// 64-bit block counter (low/high words of the ChaCha counter+nonce row).
    counter: u64,
    /// Buffered keystream words not yet consumed.
    buf: [u32; OUT_WORDS],
    /// Next unread index into `buf`; `OUT_WORDS` means empty.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants per RFC 8439.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= OUT_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; OUT_WORDS],
            idx: OUT_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(0xAC0_FFEE);
        let mut b = ChaCha8Rng::seed_from_u64(0xAC0_FFEE);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_draws_are_well_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen = [0usize; 10];
        for _ in 0..10_000 {
            seen[rng.random_range(0usize..10)] += 1;
        }
        for &count in &seen {
            assert!((800..1200).contains(&count), "biased bucket: {seen:?}");
        }
    }
}
