//! Deserialization error type shared by the derive output and `serde_json`.

use std::fmt;

/// Why a value tree could not be lifted into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Prefixes the message with the field/variant that failed, producing
    /// breadcrumbs like `architecture.device.max_res: expected array`.
    pub fn contextualize(self, context: &str) -> Self {
        Error {
            message: format!("{context}: {}", self.message),
        }
    }
}

// Constructors used by the generated derive code; keeping the formatting
// here means the macro never has to emit `format!` calls (whose braces
// would need escaping inside the code-generating `format!`s).
impl Error {
    /// "expected X for `Ty`, found Y" — type mismatch at a derive site.
    pub fn expected(what: &str, ty: &str, found: &crate::value::Value) -> Self {
        Error::new(format!(
            "expected {what} for `{ty}`, found {}",
            found.kind()
        ))
    }

    /// A required field was absent from the object.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error::new(format!("missing field `{field}` in `{ty}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error::new(format!("unknown variant `{variant}` for `{ty}`"))
    }

    /// A tuple (struct or variant) had the wrong number of elements.
    pub fn bad_arity(ty: &str, expected: usize, found: usize) -> Self {
        Error::new(format!(
            "expected {expected} element(s) for `{ty}`, found {found}"
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
