//! Offline stand-in for the `serde` crate.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a value-tree serialization framework with the same *surface*
//! (`#[derive(Serialize, Deserialize)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`, `serde_json::{to_string_pretty, from_str,
//! Value}`) and the same JSON wire format as real serde for the shapes this
//! workspace uses: named structs as objects (fields in declaration order),
//! newtype structs as their inner value, tuple structs as arrays, unit enum
//! variants as strings, and data-carrying variants as single-key objects.
//!
//! Instead of the real crate's visitor-based data model, [`Serialize`]
//! lowers to a [`value::Value`] tree and [`Deserialize`] lifts from one;
//! `serde_json` is the only data format in the workspace, so the
//! intermediate tree costs little and keeps the derive macro small.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Number, Value};

/// Types that can lower themselves to a JSON [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be lifted back from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Lifts a value of `Self` out of the tree, or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| de::Error::new(format!(
                        "expected unsigned integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| de::Error::new(format!(
                        "expected integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::new(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::new(format!("expected boolean, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| de::Error::new(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v
            .as_array()
            .ok_or_else(|| de::Error::new(format!("expected array, found {}", v.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v
            .as_array()
            .ok_or_else(|| de::Error::new(format!("expected array, found {}", v.kind())))?;
        if items.len() != N {
            return Err(de::Error::new(format!(
                "expected array of length {N}, found length {}",
                items.len()
            )));
        }
        let lifted: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(<[T; N]>::try_from(lifted).unwrap_or_else(|_| unreachable!("length checked above")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:literal),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let items = v.as_array().ok_or_else(|| {
                    de::Error::new(format!("expected array, found {}", v.kind()))
                })?;
                if items.len() != $len {
                    return Err(de::Error::new(format!(
                        "expected {}-tuple, found array of length {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0) of 1,
    (A: 0, B: 1) of 2,
    (A: 0, B: 1, C: 2) of 3,
    (A: 0, B: 1, C: 2, D: 3) of 4,
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            <Option<u8>>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            <[u64; 3]>::from_value(&[1u64, 2, 3].to_value()).unwrap(),
            [1, 2, 3]
        );
        let pair: (u64, u64) = Deserialize::from_value(&(7u64, 9u64).to_value()).unwrap();
        assert_eq!(pair, (7, 9));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_value(&Value::String("x".into())).is_err());
        assert!(u8::from_value(&Value::Number(Number::from_u64(300))).is_err());
        assert!(<[u64; 3]>::from_value(&vec![1u64, 2].to_value()).is_err());
    }
}
