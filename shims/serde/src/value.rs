//! The JSON value tree: [`Value`], [`Number`] and the insertion-ordered
//! [`Map`].
//!
//! `Map` preserves insertion order so that serializing a derived struct
//! emits fields in declaration order, matching what real `serde_json`
//! produces when streaming a struct directly to a writer.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number: unsigned, signed or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Number from a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Number from an `i64`, normalized so non-negative values compare
    /// equal to their `PosInt` form.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Number from an `f64`.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // {:?} keeps a decimal point ("1.0"), so the output re-parses
            // as a float rather than collapsing to an integer.
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// A JSON object preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key, replacing in place (position preserved) when present.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.get_mut(&key) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes a key, preserving the order of the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// A short noun for error messages ("string", "array", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Non-panicking lookup: object key or array index, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    /// Objects yield the entry or `Null` when missing; anything else
    /// yields `Null`, matching `serde_json`'s forgiving `Index`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Inserts `Null` under `key` first when missing; panics when `self`
    /// is not an object (same contract as `serde_json`).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let map = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object value with \"{key}\""));
        if !map.contains_key(key) {
            map.insert(key, Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        self.as_array_mut()
            .and_then(|a| a.get_mut(idx))
            .unwrap_or_else(|| panic!("array index {idx} out of bounds"))
    }
}

/// Escapes `s` into `out` as the body of a JSON string literal.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (`{"a":1}`), like `serde_json`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(s, &mut buf);
                write!(f, "\"{buf}\"")
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(k, &mut buf);
                    write!(f, "\"{buf}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_across_remove() {
        let mut m = Map::new();
        m.insert("b", Value::Bool(true));
        m.insert("a", Value::Null);
        m.insert("c", Value::Number(Number::from_u64(1)));
        m.remove("a");
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, ["b", "c"]);
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("name", Value::String("a\"b".into()));
        m.insert(
            "xs",
            Value::Array(vec![Value::Number(Number::from_u64(1)), Value::Null]),
        );
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"name":"a\"b","xs":[1,null]}"#);
    }

    #[test]
    fn index_on_missing_key_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"]["deeper"].is_null());
    }
}
