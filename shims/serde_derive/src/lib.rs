//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` built
//! directly on `proc_macro` (no syn/quote — crates.io is unreachable in
//! this build environment). The derives target the value-tree traits of
//! the local `serde` shim and reproduce real serde's JSON shapes for the
//! forms this workspace uses:
//!
//! - named struct   -> object, fields in declaration order
//! - newtype struct -> the inner value
//! - tuple struct   -> array
//! - unit variant   -> string `"Variant"`
//! - tuple variant  -> single-key object `{"Variant": payload}`
//!
//! Supported attributes: `#[serde(default)]` and
//! `#[serde(default = "path")]`. `Option` fields default to `None` when
//! missing, as with real serde. Generic types and struct variants are out
//! of scope and produce a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum DefaultKind {
    /// No fallback: missing field is an error.
    Required,
    /// `Default::default()` (from `#[serde(default)]` or an `Option` type).
    Std,
    /// A user function named by `#[serde(default = "path")]`.
    Path(String),
}

struct Field {
    name: String,
    default: DefaultKind,
}

struct Variant {
    name: String,
    /// Number of tuple payload elements; 0 for unit variants.
    arity: usize,
}

enum Data {
    NamedStruct(Vec<Field>),
    /// Field count (1 = newtype).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut toks: Tokens = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);

    let keyword = expect_ident(&mut toks)?;
    let name = expect_ident(&mut toks)?;
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    let data = match (keyword.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Data::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream())?)
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Data::TupleStruct(0),
        _ => {
            return Err(format!(
                "serde shim derive could not parse the body of `{name}`"
            ))
        }
    };
    Ok(Input { name, data })
}

/// Skips any `#[...]` attributes, returning those that are `#[serde(...)]`
/// as their inner token streams.
fn take_attributes(toks: &mut Tokens) -> Vec<TokenStream> {
    let mut serde_attrs = Vec::new();
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            let mut inner = g.stream().into_iter();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.next(), inner.next())
            {
                if id.to_string() == "serde" {
                    serde_attrs.push(args.stream());
                }
            }
        }
    }
    serde_attrs
}

fn skip_attributes(toks: &mut Tokens) {
    let _ = take_attributes(toks);
}

fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens) -> Result<String, String> {
    match toks.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "serde shim derive expected identifier, found {other:?}"
        )),
    }
}

/// Parses `#[serde(default)]` / `#[serde(default = "path")]` attribute args.
fn parse_default_attr(attrs: &[TokenStream]) -> Result<DefaultKind, String> {
    // A field carries at most one #[serde(...)] attribute in this codebase,
    // so only the first one is interpreted.
    let Some(attr) = attrs.first() else {
        return Ok(DefaultKind::Required);
    };
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(id)] if id.to_string() == "default" => Ok(DefaultKind::Std),
        [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if id.to_string() == "default" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            let path = raw
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("serde(default = ...) expects a string, got {raw}"))?;
            Ok(DefaultKind::Path(path.to_string()))
        }
        _ => Err(format!(
            "serde shim derive does not support attribute serde({})",
            attr
        )),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut toks: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if toks.peek().is_none() {
            return Ok(fields);
        }
        let attrs = take_attributes(&mut toks);
        if toks.peek().is_none() {
            return Ok(fields);
        }
        skip_visibility(&mut toks);
        let name = expect_ident(&mut toks)?;
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next top-level comma. Angle brackets
        // are bare puncts (not groups), so track their depth; a type like
        // `BTreeMap<K, V>` must not split at its inner comma.
        let mut depth = 0i32;
        let mut last_ident_before_generics: Option<String> = None;
        for tok in toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) if depth == 0 => {
                    last_ident_before_generics = Some(id.to_string());
                }
                _ => {}
            }
        }
        let is_option = last_ident_before_generics.as_deref() == Some("Option");
        let mut default = parse_default_attr(&attrs)?;
        if matches!(default, DefaultKind::Required) && is_option {
            // Real serde treats a missing `Option` field as `None`.
            default = DefaultKind::Std;
        }
        fields.push(Field { name, default });
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut segment_has_tokens = false;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
                continue;
            }
            _ => {}
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if toks.peek().is_none() {
            return Ok(variants);
        }
        skip_attributes(&mut toks);
        if toks.peek().is_none() {
            return Ok(variants);
        }
        let name = expect_ident(&mut toks)?;
        let mut arity = 0usize;
        // Payload, discriminant, then the separating comma.
        loop {
            match toks.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    arity = count_tuple_fields(g.stream());
                    toks.next();
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "serde shim derive does not support struct variant `{name}`"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    toks.next();
                    break;
                }
                None => break,
                _ => {
                    // Discriminant tokens (`= 3`) or similar: skip.
                    toks.next();
                }
            }
        }
        variants.push(Variant { name, arity });
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut out = String::from("let mut map = ::serde::value::Map::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "map.insert(\"{n}\", ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            out.push_str("::serde::value::Value::Object(map)");
            out
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                         let mut map = ::serde::value::Map::new();\n\
                         map.insert(\"{vn}\", ::serde::Serialize::to_value(x0));\n\
                         ::serde::value::Value::Object(map)\n\
                         }}\n"
                    )),
                    n => {
                        let binders: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut map = ::serde::value::Map::new();\n\
                             map.insert(\"{vn}\", ::serde::value::Value::Array(vec![{items}]));\n\
                             ::serde::value::Value::Object(map)\n\
                             }}\n",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut out = format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::de::Error::expected(\"object\", \"{name}\", v))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                let missing = match &f.default {
                    DefaultKind::Required => format!(
                        "return Err(::serde::de::Error::missing_field(\"{n}\", \"{name}\"))",
                        n = f.name
                    ),
                    DefaultKind::Std => "::core::default::Default::default()".to_string(),
                    DefaultKind::Path(path) => format!("{path}()"),
                };
                out.push_str(&format!(
                    "{n}: match obj.get(\"{n}\") {{\n\
                     Some(inner) => ::serde::Deserialize::from_value(inner)\
                     .map_err(|e| e.contextualize(\"{n}\"))?,\n\
                     None => {missing},\n\
                     }},\n",
                    n = f.name
                ));
            }
            out.push_str("})");
            out
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::de::Error::expected(\"array\", \"{name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::de::Error::bad_arity(\"{name}\", {n}, items.len()));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    1 => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)\
                         .map_err(|e| e.contextualize(\"{vn}\"))?)),\n"
                    )),
                    n => {
                        let items: Vec<String> = (0..n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(&items[{i}])\
                                     .map_err(|e| e.contextualize(\"{vn}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             ::serde::de::Error::expected(\"array\", \"{name}\", inner))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::de::Error::bad_arity(\"{name}\", {n}, items.len()));\n\
                             }}\n\
                             Ok({name}::{vn}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::value::Value::String(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                 }},\n\
                 ::serde::value::Value::Object(map) => {{\n\
                 let (tag, inner) = map.iter().next().ok_or_else(|| \
                 ::serde::de::Error::expected(\"single-key object\", \"{name}\", v))?;\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::de::Error::expected(\"string or object\", \"{name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}
