//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the workspace's actual usage surface: [`to_string`],
//! [`to_string_pretty`] (2-space indent, matching real serde_json),
//! [`from_str`], and [`Value`]/[`Map`]/[`Number`] re-exported from the
//! local `serde` shim. Serialization lowers through `serde::Serialize`'s
//! value tree; parsing is a from-scratch recursive-descent JSON reader
//! with full escape handling.

pub use serde::value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to pretty JSON with 2-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    Ok(T::from_value(&value)?)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Empty containers and scalars use the compact form.
        other => out.push_str(&other.to_string()),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        // 1-based line/column of the current position, like serde_json.
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error::new(format!("{msg} at line {line} column {column}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Value::Array(items));
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Value::Object(map));
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Consume the longest run of plain bytes in one step and
                    // validate it as UTF-8 once. Re-validating the whole
                    // remaining input per character would make parsing
                    // quadratic in document size (minutes on multi-MB docs).
                    let start = self.pos;
                    let mut end = start;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    if run.chars().any(|c| c.is_control()) {
                        return Err(self.err("control character in string"));
                    }
                    out.push_str(run);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.eat(b'-');
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::from_f64(f)))
        } else if negative {
            let n: i64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Number(Number::from_i64(n)))
        } else {
            let n: u64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Number(Number::from_u64(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v: Value = from_str(r#" {"a": [1, -2, 3.5, true, null], "b": "x\ny"} "#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"].as_str(), Some("x\ny"));
    }

    #[test]
    fn compact_roundtrip_is_stable() {
        let text = r#"{"name":"zéd","xs":[1,2],"geo":null}"#;
        let v: Value = from_str(text).unwrap();
        let round: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, round);
        assert_eq!(v["name"].as_str(), Some("zéd"));
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let v: Value = from_str(r#"{"a":1,"b":[true],"c":{},"d":[]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ],\n  \"c\": {},\n  \"d\": []\n}"
        );
    }

    #[test]
    fn errors_carry_positions() {
        let e = from_str::<Value>("{\"a\": \n nope}").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        let lit: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(lit.as_str(), Some("😀"));
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // The string scanner consumes plain-byte runs wholesale; a
        // per-character re-validation of the remaining input regresses
        // parsing to O(n^2) (minutes for the multi-MB instance files the
        // scaling study feeds through `ProblemInstance::load`). 4 MB of
        // string content finishes instantly when linear and blows the
        // 10-second guard when quadratic.
        let body = "x".repeat(1 << 20);
        let doc = format!("[\"{body}\", \"{body}\", \"{body}\", \"{body}\"]");
        let t0 = std::time::Instant::now();
        let v: Value = from_str(&doc).unwrap();
        assert!(t0.elapsed().as_secs() < 10, "string parsing is quadratic");
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].as_str().map(str::len), Some(1 << 20));
        // Runs still honour escapes, multi-byte chars, and control bytes.
        let mixed: Value = from_str("\"héllo \\n wörld 😀\"").unwrap();
        assert_eq!(mixed.as_str(), Some("héllo \n wörld 😀"));
        assert!(from_str::<Value>("\"bad \u{1} ctrl\"").is_err());
    }
}
