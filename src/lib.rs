//! # prfpga
//!
//! Umbrella crate for the `prfpga` workspace: a from-scratch, open-source
//! reproduction of *"Resource-Efficient Scheduling for
//! Partially-Reconfigurable FPGA-based Systems"* (Purgato, Tantillo,
//! Rabozzi, Sciuto, Santambrogio — IPDPS Workshops 2016).
//!
//! The workspace provides:
//!
//! * [`model`] — the problem vocabulary (devices, resources, task graphs,
//!   implementations, schedules);
//! * [`dag`] — the dependency-graph substrate (topological order, CPM time
//!   windows, cycle-safe sequencing arcs);
//! * [`timeline`] — the typed lane-reservation kernel (core / region /
//!   reconfiguration-controller lanes, gap queries, snapshot/rollback)
//!   shared by the schedulers, the baselines and the simulator;
//! * [`floorplan`] — a tile-grid fabric model and an exact feasibility
//!   floorplanner standing in for the MILP floorplanner of the paper's
//!   ref. \[3\];
//! * [`sched`] — the paper's contribution: the deterministic PA scheduler
//!   and the randomized PA-R variant;
//! * [`baseline`] — the IS-k iterative exact scheduler (paper ref. \[6\]) and
//!   a HEFT-style list scheduler for comparison;
//! * [`portfolio`] — a deadline-aware driver racing PA, PA-R and IS-k under
//!   one cooperative cancellation token, with anytime (degraded) results;
//! * [`sim`] — an independent schedule validator, discrete-event executor
//!   and ASCII Gantt renderer;
//! * [`gen`] — the seeded synthetic benchmark-suite generator reproducing
//!   the paper's evaluation workload.
//!
//! ## Quickstart
//!
//! ```
//! use prfpga::prelude::*;
//!
//! // Build the paper's Figure-1 style toy application.
//! let mut impls = ImplPool::new();
//! let sw = impls.add(Implementation::software("t1_sw", 10_000));
//! let hw_fast = impls.add(Implementation::hardware(
//!     "t1_fast", 400, ResourceVec::new(4000, 40, 80)));
//! let hw_eff = impls.add(Implementation::hardware(
//!     "t1_eff", 900, ResourceVec::new(900, 8, 10)));
//! let mut graph = TaskGraph::new();
//! let t1 = graph.add_task("t1", vec![sw, hw_fast, hw_eff]);
//! let t2 = graph.add_task("t2", vec![sw, hw_eff]);
//! graph.add_edge(t1, t2);
//!
//! let instance = ProblemInstance::new(
//!     "toy", Architecture::zedboard(), graph, impls).unwrap();
//!
//! // Schedule with the deterministic PA heuristic...
//! let schedule = PaScheduler::new(SchedulerConfig::default())
//!     .schedule(&instance)
//!     .expect("feasible schedule");
//!
//! // ...and check it with the independent validator.
//! validate_schedule(&instance, &schedule).expect("valid schedule");
//! assert!(schedule.makespan() > 0);
//! ```

pub use prfpga_baseline as baseline;
pub use prfpga_dag as dag;
pub use prfpga_floorplan as floorplan;
pub use prfpga_gen as gen;
pub use prfpga_model as model;
pub use prfpga_portfolio as portfolio;
pub use prfpga_sched as sched;
pub use prfpga_sim as sim;
pub use prfpga_timeline as timeline;

/// Convenient glob-import surface covering the common API.
pub mod prelude {
    pub use prfpga_baseline::{HeftScheduler, IsKScheduler};
    pub use prfpga_gen::{EventConfig, EventTraceGenerator, SuiteConfig, TaskGraphGenerator};
    pub use prfpga_model::{
        Architecture, Device, EventTrace, FabricId, ImplId, ImplKind, ImplPool, Implementation,
        Placement, Platform, ProblemInstance, Reconfiguration, Region, RegionId, ResourceKind,
        ResourceVec, Schedule, ScheduleEvent, TaskGraph, TaskId, Time, TimeWindow,
    };
    pub use prfpga_portfolio::{Member, Portfolio, PortfolioConfig};
    pub use prfpga_sched::{
        Budget, CancelToken, CostPolicy, FakeClock, OrderingPolicy, PaRScheduler, PaScheduler,
        RepairConfig, RepairEngine, RepairOutcome, SchedulerConfig,
    };
    pub use prfpga_sim::{validate_schedule, validate_schedule_sweep};
}
