//! Integration tests of the communication-cost extension (§VIII future
//! work): per-edge costs are charged exactly when producer and consumer
//! are not co-located, every scheduler respects them, and the independent
//! validator enforces them.

use prfpga::gen::{GraphConfig, TaskGraphGenerator};
use prfpga::model::Device;
use prfpga::prelude::*;
use prfpga::sim::execute_asap;

/// Chain a -> b with a 100-tick edge. Both tasks are software on a
/// single-core machine, so they are co-located and the cost vanishes.
#[test]
fn colocated_software_chain_pays_no_communication() {
    let mut impls = ImplPool::new();
    let a_sw = impls.add(Implementation::software("a", 50));
    let b_sw = impls.add(Implementation::software("b", 70));
    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![a_sw]);
    let b = g.add_task("b", vec![b_sw]);
    g.add_edge_with_cost(a, b, 100);
    let inst = ProblemInstance::new(
        "coloc",
        Architecture::new(1, Device::tiny_test(ResourceVec::new(4, 0, 0), 1)),
        g,
        impls,
    )
    .unwrap();
    let s = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert_eq!(s.makespan(), 120, "same core: no communication penalty");
}

/// Chain a (hardware) -> b (software): placements differ, so the full
/// edge cost separates them.
#[test]
fn cross_boundary_edge_pays_communication() {
    let mut impls = ImplPool::new();
    let a_sw = impls.add(Implementation::software("a_sw", 500));
    let a_hw = impls.add(Implementation::hardware(
        "a_hw",
        50,
        ResourceVec::new(4, 0, 0),
    ));
    let b_sw = impls.add(Implementation::software("b", 70));
    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![a_sw, a_hw]);
    let b = g.add_task("b", vec![b_sw]);
    g.add_edge_with_cost(a, b, 100);
    let inst = ProblemInstance::new(
        "cross",
        Architecture::new(1, Device::tiny_test(ResourceVec::new(4, 0, 0), 1)),
        g,
        impls,
    )
    .unwrap();
    let s = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    validate_schedule(&inst, &s).unwrap();
    // a runs in hardware [0,50); b waits out the 100-tick transfer.
    assert_eq!(s.assignment(TaskId(0)).end, 50);
    assert!(matches!(
        s.assignment(TaskId(0)).placement,
        Placement::Region(_)
    ));
    assert_eq!(s.assignment(TaskId(1)).start, 150);
    assert_eq!(s.makespan(), 220);
}

/// The validator rejects schedules that ignore a communication edge.
#[test]
fn validator_enforces_communication() {
    let mut impls = ImplPool::new();
    let a_sw = impls.add(Implementation::software("a", 50));
    let b_sw = impls.add(Implementation::software("b", 70));
    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![a_sw]);
    let b = g.add_task("b", vec![b_sw]);
    g.add_edge_with_cost(a, b, 100);
    let inst = ProblemInstance::new(
        "enforce",
        Architecture::new(2, Device::tiny_test(ResourceVec::new(4, 0, 0), 1)),
        g,
        impls,
    )
    .unwrap();
    use prfpga::model::{Schedule, TaskAssignment};
    // Different cores, back-to-back without the 100-tick gap: invalid.
    let bad = Schedule {
        regions: vec![],
        assignments: vec![
            TaskAssignment {
                impl_id: a_sw,
                placement: Placement::Core(0),
                start: 0,
                end: 50,
            },
            TaskAssignment {
                impl_id: b_sw,
                placement: Placement::Core(1),
                start: 50,
                end: 120,
            },
        ],
        reconfigurations: vec![],
    };
    assert!(validate_schedule(&inst, &bad).is_err());
    // With the gap: valid.
    let good = Schedule {
        regions: vec![],
        assignments: vec![
            TaskAssignment {
                impl_id: a_sw,
                placement: Placement::Core(0),
                start: 0,
                end: 50,
            },
            TaskAssignment {
                impl_id: b_sw,
                placement: Placement::Core(1),
                start: 150,
                end: 220,
            },
        ],
        reconfigurations: vec![],
    };
    assert!(validate_schedule(&inst, &good).is_ok());
    // Same core, no gap: also valid (co-located).
    let coloc = Schedule {
        regions: vec![],
        assignments: vec![
            TaskAssignment {
                impl_id: a_sw,
                placement: Placement::Core(0),
                start: 0,
                end: 50,
            },
            TaskAssignment {
                impl_id: b_sw,
                placement: Placement::Core(0),
                start: 50,
                end: 120,
            },
        ],
        reconfigurations: vec![],
    };
    assert!(validate_schedule(&inst, &coloc).is_ok());
}

/// All schedulers produce valid schedules on generated instances with
/// communication costs, and the ASAP replay stays consistent.
#[test]
fn all_schedulers_respect_generated_communication_costs() {
    for seed in [1u64, 2] {
        let cfg = GraphConfig {
            comm_cost_range: (50, 800),
            ..GraphConfig::standard(25)
        };
        let inst =
            TaskGraphGenerator::new(seed).generate("commgen", &cfg, Architecture::zedboard_pr());
        assert!(inst.graph.edge_costs.iter().any(|&c| c > 0));

        let pa = PaScheduler::new(SchedulerConfig::default())
            .schedule(&inst)
            .unwrap();
        validate_schedule(&inst, &pa).expect("PA valid under comm costs");
        let asap = execute_asap(&inst, &pa).unwrap();
        assert!(asap.makespan <= pa.makespan());

        let is1 = IsKScheduler::with_k(1).schedule(&inst).unwrap();
        validate_schedule(&inst, &is1).expect("IS-1 valid under comm costs");

        let is2 = IsKScheduler::with_k(2).schedule(&inst).unwrap();
        validate_schedule(&inst, &is2).expect("IS-2 valid under comm costs");

        let heft = HeftScheduler::new().schedule(&inst).unwrap();
        validate_schedule(&inst, &heft).expect("HEFT valid under comm costs");

        let par = PaRScheduler::new(SchedulerConfig {
            max_iterations: 3,
            ..Default::default()
        })
        .schedule(&inst)
        .unwrap();
        validate_schedule(&inst, &par).expect("PA-R valid under comm costs");
    }
}

/// Instances with communication costs survive the JSON round-trip.
#[test]
fn edge_costs_roundtrip_through_json() {
    let cfg = GraphConfig {
        comm_cost_range: (10, 100),
        ..GraphConfig::standard(12)
    };
    let inst = TaskGraphGenerator::new(9).generate("commjson", &cfg, Architecture::zedboard_pr());
    let back = ProblemInstance::from_json(&inst.to_json()).unwrap();
    assert_eq!(inst, back);
    assert_eq!(inst.graph.edge_costs, back.graph.edge_costs);
}

/// Old-format JSON without the `edge_costs` field still loads (all-zero).
#[test]
fn legacy_json_without_edge_costs_loads() {
    let mut impls = ImplPool::new();
    let sw = impls.add(Implementation::software("s", 10));
    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![sw]);
    let b = g.add_task("b", vec![sw]);
    g.add_edge(a, b);
    let inst = ProblemInstance::new(
        "legacy",
        Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 0, 0), 1)),
        g,
        impls,
    )
    .unwrap();
    let mut json: serde_json::Value = serde_json::from_str(&inst.to_json()).unwrap();
    json["graph"].as_object_mut().unwrap().remove("edge_costs");
    let reloaded = ProblemInstance::from_json(&json.to_string()).unwrap();
    assert_eq!(reloaded.graph.edge_cost(0), 0);
}
