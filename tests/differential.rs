//! Differential oracles: every scheduler is checked against an
//! *independently computed* bound rather than against golden outputs.
//!
//! * Lower bound: no valid schedule can beat the CPM critical path of the
//!   task graph with every task at its fastest implementation and
//!   unlimited resources (`crates/dag`). Resources, reconfiguration and
//!   communication only ever add time.
//! * Cross-algorithm: the randomized PA-R explores a superset of the
//!   deterministic PA's orderings and keeps the best feasible candidate,
//!   so with a fixed iteration budget its aggregate makespan must not
//!   lose to PA's beyond noise (1.02x, the repo's established tolerance).

use prfpga::baseline::IsKConfig;
use prfpga::dag::{CpmAnalysis, Dag};
use prfpga::gen::SuiteConfig;
use prfpga::model::Time;
use prfpga::prelude::*;
use prfpga::sched::PaRResult;

fn groups() -> Vec<Vec<ProblemInstance>> {
    let mut suite = SuiteConfig {
        groups: vec![20, 40],
        graphs_per_group: 2,
        seed: 0xD1FF_2016,
    }
    .generate(&Architecture::zedboard_pr());
    // CI's platform-wrap leg: `PRFPGA_PLATFORM_WRAP=1` re-targets every
    // instance at the same device wrapped as a 1-fabric platform, forcing
    // the partition phase and the per-fabric floorplan/validator/controller
    // paths on. Every oracle in this file must hold unchanged — the wrap
    // is required to be byte-identical.
    if matches!(std::env::var("PRFPGA_PLATFORM_WRAP").as_deref(), Ok("1")) {
        for inst in suite.iter_mut().flatten() {
            inst.architecture.platform = Some(prfpga::model::Platform::single(
                inst.architecture.device.clone(),
            ));
        }
    }
    suite
}

/// Base configuration for every scheduler in this file. CI runs the suite
/// twice: once as-is (journaled solve/commit realization, the default) and
/// once with `PRFPGA_SOLVE_COMMIT=0` flipping phase G onto the direct
/// non-journaled path — the two must agree on every oracle here, which is
/// what makes the gate a pure seam and not a behavior switch.
fn base_config() -> SchedulerConfig {
    SchedulerConfig {
        solve_commit: !matches!(std::env::var("PRFPGA_SOLVE_COMMIT").as_deref(), Ok("0")),
        ..Default::default()
    }
}

/// Ideal unlimited-resource makespan: CPM over the precedence graph with
/// each task at its fastest implementation (hardware or software).
fn cpm_lower_bound(inst: &ProblemInstance) -> Time {
    let dag = Dag::from_taskgraph(&inst.graph).expect("generated graphs are acyclic");
    let durations: Vec<Time> = inst
        .graph
        .task_ids()
        .map(|t| {
            inst.graph
                .task(t)
                .impls
                .iter()
                .map(|&i| inst.impls.get(i).time)
                .min()
                .expect("every task has at least one implementation")
        })
        .collect();
    CpmAnalysis::run(&dag, &durations).makespan
}

/// Every algorithm's validated makespan respects the CPM lower bound on
/// every instance of the suite.
#[test]
fn all_schedulers_respect_cpm_lower_bound() {
    let pa = PaScheduler::new(base_config());
    let par = PaRScheduler::new(SchedulerConfig {
        max_iterations: 4,
        time_budget: std::time::Duration::from_secs(120),
        ..base_config()
    });
    let is1 = IsKScheduler::new(IsKConfig::is1());
    let is5 = IsKScheduler::new(IsKConfig::is5());
    let heft = HeftScheduler::new();

    for group in groups() {
        for inst in &group {
            let bound = cpm_lower_bound(inst);
            assert!(bound > 0, "{}: degenerate lower bound", inst.name);
            let runs: [(&str, Schedule); 5] = [
                ("PA", pa.schedule(inst).unwrap()),
                ("PA-R", par.schedule(inst).unwrap()),
                ("IS-1", is1.schedule(inst).unwrap()),
                ("IS-5", is5.schedule(inst).unwrap()),
                ("HEFT", heft.schedule(inst).unwrap()),
            ];
            for (name, s) in runs {
                validate_schedule(inst, &s).expect("valid schedule");
                // The sweep-line checker must agree with the pairwise
                // oracle on every real scheduler output, not only on the
                // synthetic mutation corpus.
                assert_eq!(
                    validate_schedule_sweep(inst, &s),
                    Ok(()),
                    "{name} on {}: sweep checker disagrees with the oracle",
                    inst.name
                );
                assert!(
                    s.makespan() >= bound,
                    "{name} on {}: makespan {} beats the CPM lower bound {}",
                    inst.name,
                    s.makespan(),
                    bound
                );
            }
        }
    }
}

/// The workspace-reuse fast path (buffer recycling, incremental CPM,
/// floorplan-feasibility cache) is a pure optimization: with a fixed
/// seed it must produce byte-identical schedules, restart counts,
/// iteration counts and convergence traces to the fresh-allocation
/// path on every instance of the suite.
#[test]
fn workspace_reuse_is_byte_identical_to_fresh_allocation() {
    let fresh_cfg = SchedulerConfig {
        workspace_reuse: false,
        ..base_config()
    };
    let reuse_cfg = base_config();
    assert!(reuse_cfg.workspace_reuse, "reuse is the default");

    let pa_fresh = PaScheduler::new(fresh_cfg.clone());
    let pa_reuse = PaScheduler::new(reuse_cfg.clone());
    let par_cfg = |base: &SchedulerConfig| SchedulerConfig {
        max_iterations: 6,
        time_budget: std::time::Duration::from_secs(120),
        ..base.clone()
    };
    let par_fresh = PaRScheduler::new(par_cfg(&fresh_cfg));
    let par_reuse = PaRScheduler::new(par_cfg(&reuse_cfg));

    for group in groups() {
        for inst in &group {
            let a = pa_fresh.schedule_detailed(inst).unwrap();
            let b = pa_reuse.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA schedule on {}", inst.name);
            assert_eq!(a.attempts, b.attempts, "PA attempts on {}", inst.name);

            let a = par_fresh.schedule_detailed(inst).unwrap();
            let b = par_reuse.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA-R schedule on {}", inst.name);
            assert_eq!(
                a.iterations, b.iterations,
                "PA-R iterations on {}",
                inst.name
            );
            let points = |r: &PaRResult| -> Vec<(usize, Time)> {
                r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
            };
            assert_eq!(points(&a), points(&b), "PA-R convergence on {}", inst.name);
        }
    }
}

/// The CSR/bitset fast graph paths (frozen struct-of-arrays view, cached
/// transitive-closure reachability, closure-maintained sequencing-arc
/// insertion) are pure optimizations: with `csr_paths` off the schedulers
/// fall back to journaled-adjacency DFS probes everywhere, and the two
/// configurations must produce byte-identical schedules, restart counts,
/// iteration counts and convergence traces across PA, PA-R and IS-1.
#[test]
fn csr_fast_paths_are_byte_identical_to_dfs_paths() {
    let slow_cfg = SchedulerConfig {
        csr_paths: false,
        ..base_config()
    };
    let fast_cfg = base_config();
    assert!(fast_cfg.csr_paths, "fast graph paths are the default");

    let pa_slow = PaScheduler::new(slow_cfg.clone());
    let pa_fast = PaScheduler::new(fast_cfg.clone());
    let par_cfg = |base: &SchedulerConfig| SchedulerConfig {
        max_iterations: 6,
        time_budget: std::time::Duration::from_secs(120),
        ..base.clone()
    };
    let par_slow = PaRScheduler::new(par_cfg(&slow_cfg));
    let par_fast = PaRScheduler::new(par_cfg(&fast_cfg));
    // IS-1 never reads `SchedulerConfig`, so the flag cannot change its
    // output directly — but the fast paths do keep process-global state
    // (the thread-local DFS scratch shrunk on workspace resets). Running
    // IS-1 interleaved with both PA configurations pins that none of it
    // leaks across algorithms.
    let is1_slow = IsKScheduler::new(IsKConfig::is1());
    let is1_fast = IsKScheduler::new(IsKConfig::is1());

    for group in groups() {
        for inst in &group {
            let a = pa_slow.schedule_detailed(inst).unwrap();
            let b = pa_fast.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA schedule on {}", inst.name);
            assert_eq!(a.attempts, b.attempts, "PA attempts on {}", inst.name);

            let a = par_slow.schedule_detailed(inst).unwrap();
            let b = par_fast.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA-R schedule on {}", inst.name);
            assert_eq!(
                a.iterations, b.iterations,
                "PA-R iterations on {}",
                inst.name
            );
            let points = |r: &PaRResult| -> Vec<(usize, Time)> {
                r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
            };
            assert_eq!(points(&a), points(&b), "PA-R convergence on {}", inst.name);

            let a = is1_slow.schedule(inst).unwrap();
            let b = is1_fast.schedule(inst).unwrap();
            assert_eq!(a, b, "IS-1 schedule on {}", inst.name);
        }
    }
}

/// The cooperative-cancellation plumbing is inert without a deadline:
/// scheduling through a never-firing [`CancelToken`] must be byte-identical
/// to the plain entry points — schedules, restart/iteration counts and
/// convergence traces — and a single-member portfolio must reproduce the
/// standalone scheduler exactly. (Wall-clock durations in the traces are
/// excluded; they are the only legitimately nondeterministic fields.)
#[test]
fn cancellation_plumbing_is_inert_without_a_deadline() {
    use prfpga::portfolio::{Member, Portfolio, PortfolioConfig};

    let pa = PaScheduler::new(base_config());
    let par_cfg = SchedulerConfig {
        max_iterations: 4,
        time_budget: std::time::Duration::from_secs(120),
        ..base_config()
    };
    let par = PaRScheduler::new(par_cfg.clone());

    for group in groups() {
        for inst in &group {
            let plain = pa.schedule_detailed(inst).unwrap();
            let never = pa
                .schedule_with_cancel(inst, &CancelToken::never())
                .unwrap();
            assert_eq!(
                plain.schedule, never.schedule,
                "PA schedule on {}",
                inst.name
            );
            assert_eq!(
                plain.attempts, never.attempts,
                "PA attempts on {}",
                inst.name
            );
            assert!(!never.degraded, "PA degraded on {}", inst.name);
            // Poll *counts* are compared only under a pinned floorplanner
            // config (see crates/sched/tests/cancellation_sweep.rs): with
            // the default 250 ms solver time limit the number of search
            // nodes — and hence stride polls — is wall-clock-dependent.
            assert!(never.trace.cancel_polls > 0, "PA polled on {}", inst.name);
            assert_eq!(never.trace.deadline_hits, 0, "PA hits on {}", inst.name);

            let plain = par.schedule_detailed(inst).unwrap();
            let never = par
                .schedule_with_cancel(inst, &CancelToken::never())
                .unwrap();
            assert_eq!(
                plain.schedule, never.schedule,
                "PA-R schedule on {}",
                inst.name
            );
            assert_eq!(
                plain.iterations, never.iterations,
                "PA-R iterations on {}",
                inst.name
            );
            assert!(!never.degraded, "PA-R degraded on {}", inst.name);
            assert_eq!(never.deadline_hits, 0, "PA-R hits on {}", inst.name);
            let points = |r: &PaRResult| -> Vec<(usize, Time)> {
                r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
            };
            assert_eq!(
                points(&plain),
                points(&never),
                "PA-R convergence on {}",
                inst.name
            );

            // A deadline-free single-member portfolio is just that member.
            let r = Portfolio::new(PortfolioConfig {
                members: vec![Member::PaR],
                sched: par_cfg.clone(),
                ..Default::default()
            })
            .run(inst)
            .unwrap();
            assert_eq!(
                r.schedule, plain.schedule,
                "portfolio PA-R on {}",
                inst.name
            );
            assert!(
                !r.degraded && !r.deadline_hit,
                "portfolio flags on {}",
                inst.name
            );
        }
    }
}

/// PA-R vs PA over the same suite, aggregate with the repo's 1.02x noise
/// tolerance.
///
/// Release builds only: the floorplanner's wall-clock budget interacts
/// with unoptimized code in debug builds, turning otherwise-deterministic
/// feasibility answers into timeouts and perturbing the comparison.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "floorplan wall-clock budget is unreliable in debug builds"
)]
fn par_aggregate_does_not_lose_to_pa() {
    let pa = PaScheduler::new(base_config());
    let par = PaRScheduler::new(SchedulerConfig {
        max_iterations: 12,
        time_budget: std::time::Duration::from_secs(120),
        ..base_config()
    });
    let mut pa_total = 0u64;
    let mut par_total = 0u64;
    for group in groups() {
        for inst in &group {
            let s_pa = pa.schedule(inst).unwrap();
            let s_par = par.schedule(inst).unwrap();
            validate_schedule(inst, &s_pa).expect("valid PA schedule");
            validate_schedule(inst, &s_par).expect("valid PA-R schedule");
            pa_total += s_pa.makespan();
            par_total += s_par.makespan();
        }
    }
    assert!(
        par_total as f64 <= pa_total as f64 * 1.02,
        "PA-R aggregate ({par_total}) should not lose to PA ({pa_total}) beyond noise"
    );
}

/// A 1-fabric [`Platform`] is the degenerate case of the platform model:
/// the partition phase assigns every component to fabric 0, the crossing
/// latency never fires, and the per-fabric floorplan/controller/validator
/// paths collapse onto the single-device ones. Wrapping each instance's
/// device in `Platform::single` must therefore be byte-identical across
/// PA, PA-R, IS-1, the portfolio, and the repair engine — schedules,
/// restart/iteration counts, convergence traces, and repaired outcomes.
#[test]
fn single_fabric_platform_wrap_is_byte_identical() {
    let pa = PaScheduler::new(base_config());
    let par = PaRScheduler::new(SchedulerConfig {
        max_iterations: 4,
        time_budget: std::time::Duration::from_secs(120),
        ..base_config()
    });
    let is1 = IsKScheduler::new(IsKConfig::is1());
    let portfolio = Portfolio::new(PortfolioConfig {
        members: vec![Member::Pa, Member::PaR],
        sched: SchedulerConfig {
            max_iterations: 4,
            time_budget: std::time::Duration::from_secs(120),
            ..base_config()
        },
        ..Default::default()
    });

    for group in groups() {
        for inst in &group {
            let mut wrapped = inst.clone();
            wrapped.architecture.platform =
                Some(Platform::single(wrapped.architecture.device.clone()));

            let a = pa.schedule_detailed(inst).unwrap();
            let b = pa.schedule_detailed(&wrapped).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA schedule on {}", inst.name);
            assert_eq!(a.attempts, b.attempts, "PA attempts on {}", inst.name);
            let pa_baseline = a.schedule;

            let a = par.schedule_detailed(inst).unwrap();
            let b = par.schedule_detailed(&wrapped).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA-R schedule on {}", inst.name);
            assert_eq!(
                a.iterations, b.iterations,
                "PA-R iterations on {}",
                inst.name
            );
            let points = |r: &PaRResult| -> Vec<(usize, Time)> {
                r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
            };
            assert_eq!(points(&a), points(&b), "PA-R convergence on {}", inst.name);

            let a = is1.schedule(inst).unwrap();
            let b = is1.schedule(&wrapped).unwrap();
            assert_eq!(a, b, "IS-1 schedule on {}", inst.name);

            let a = portfolio.run(inst).unwrap();
            let b = portfolio.run(&wrapped).unwrap();
            assert_eq!(
                a.schedule, b.schedule,
                "portfolio schedule on {}",
                inst.name
            );
            assert_eq!(a.winner, b.winner, "portfolio winner on {}", inst.name);

            // Repair: replay one synthetic event trace against the PA
            // baseline under both targets; every repaired schedule state
            // must match (the trace itself is a pure function of the
            // instance + baseline, both already proven identical).
            let trace = EventTraceGenerator::new(0x9A7F_0001).generate(
                inst,
                &pa_baseline,
                &EventConfig::standard(12),
            );
            let mut plain =
                RepairEngine::new(inst.clone(), pa_baseline.clone(), RepairConfig::default())
                    .unwrap();
            let mut wrapped_engine = RepairEngine::new(
                wrapped.clone(),
                pa_baseline.clone(),
                RepairConfig::default(),
            )
            .unwrap();
            for event in &trace.events {
                let a = plain.apply(event).unwrap();
                let b = wrapped_engine.apply(event).unwrap();
                assert_eq!(a, b, "repair outcome on {}", inst.name);
                assert_eq!(
                    plain.schedule(),
                    wrapped_engine.schedule(),
                    "repaired schedule on {}",
                    inst.name
                );
            }
        }
    }
}

/// Multi-fabric end-to-end: a 120-task instance targeted at the Alveo
/// U250 catalog platform (4 SLR fabrics) schedules with PA, passes both
/// validators, actually spreads regions across fabrics, pays the
/// crossing latency on at least one inter-fabric data edge, and renders
/// fabric-grouped Gantt/SVG output.
#[test]
fn alveo_u250_schedules_end_to_end() {
    use prfpga::gen::GraphConfig;
    use prfpga::sim::{render_gantt, render_svg};

    let arch = Architecture::on_platform(2, Platform::alveo_u250());
    let crossing = arch.crossing_latency();
    assert!(crossing > 0, "catalog platform has a crossing cost");
    let inst = TaskGraphGenerator::new(0xA1_0250).generate(
        "alveo_u250_smoke",
        &GraphConfig::standard(120),
        arch,
    );

    let s = PaScheduler::new(base_config()).schedule(&inst).unwrap();
    validate_schedule(&inst, &s).expect("valid multi-fabric schedule");
    assert_eq!(validate_schedule_sweep(&inst, &s), Ok(()));
    assert!(
        s.fabric_span() > 1,
        "120 tasks on 4 SLRs should use more than one fabric (span {})",
        s.fabric_span()
    );

    // At least one data edge must cross fabrics, and its consumer must
    // start no earlier than producer end + crossing latency.
    let mut crossings = 0usize;
    for (from, to, cost) in inst.graph.edges_with_costs() {
        let a = &s.assignments[from.index()];
        let b = &s.assignments[to.index()];
        let (Placement::Region(ra), Placement::Region(rb)) = (a.placement, b.placement) else {
            continue;
        };
        if s.regions[ra.index()].fabric != s.regions[rb.index()].fabric {
            crossings += 1;
            assert!(
                b.start >= a.end + cost + crossing,
                "edge {from:?}->{to:?} crosses fabrics but starts {} < {} + {cost} + {crossing}",
                b.start,
                a.end
            );
        }
    }
    assert!(crossings > 0, "no data edge crosses fabrics");

    let gantt = render_gantt(&inst, &s, 100);
    assert!(gantt.contains("fabric 0:") && gantt.contains("fabric 1:"));
    let svg = render_svg(&inst, &s);
    assert!(svg.contains("f0 reg") && svg.contains("f1 "));
}

/// The solve/commit split (phase G routed through the edit journal and
/// `commit_batch` instead of realizing directly into the lanes) is a pure
/// seam: with `solve_commit` off the schedulers fall back to the direct
/// non-journaled realization, and the two configurations must produce
/// byte-identical schedules, restart counts, iteration counts and
/// convergence traces.
#[test]
fn solve_commit_gate_is_byte_identical() {
    let direct_cfg = SchedulerConfig {
        solve_commit: false,
        ..Default::default()
    };
    let journal_cfg = SchedulerConfig {
        solve_commit: true,
        ..Default::default()
    };

    let pa_direct = PaScheduler::new(direct_cfg.clone());
    let pa_journal = PaScheduler::new(journal_cfg.clone());
    let par_cfg = |base: &SchedulerConfig| SchedulerConfig {
        max_iterations: 6,
        time_budget: std::time::Duration::from_secs(120),
        ..base.clone()
    };
    let par_direct = PaRScheduler::new(par_cfg(&direct_cfg));
    let par_journal = PaRScheduler::new(par_cfg(&journal_cfg));

    for group in groups() {
        for inst in &group {
            let a = pa_direct.schedule_detailed(inst).unwrap();
            let b = pa_journal.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA schedule on {}", inst.name);
            assert_eq!(a.attempts, b.attempts, "PA attempts on {}", inst.name);

            let a = par_direct.schedule_detailed(inst).unwrap();
            let b = par_journal.schedule_detailed(inst).unwrap();
            assert_eq!(a.schedule, b.schedule, "PA-R schedule on {}", inst.name);
            assert_eq!(
                a.iterations, b.iterations,
                "PA-R iterations on {}",
                inst.name
            );
            let points = |r: &PaRResult| -> Vec<(usize, Time)> {
                r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
            };
            assert_eq!(points(&a), points(&b), "PA-R convergence on {}", inst.name);
        }
    }
}
