//! End-to-end integration: every scheduler, over a generated mini-suite,
//! always yields schedules that the independent validator accepts.

use std::time::Duration;

use prfpga::gen::SuiteConfig;
use prfpga::prelude::*;
use prfpga::sim::{execute_asap, schedule_stats};

fn mini_suite() -> Vec<ProblemInstance> {
    SuiteConfig {
        groups: vec![10, 25, 40],
        graphs_per_group: 2,
        seed: 0xE2E,
    }
    .generate(&Architecture::zedboard())
    .into_iter()
    .flatten()
    .collect()
}

#[test]
fn pa_valid_on_suite() {
    let pa = PaScheduler::new(SchedulerConfig::default());
    for inst in mini_suite() {
        let s = pa.schedule(&inst).expect("schedulable");
        validate_schedule(&inst, &s).expect("valid");
        assert_eq!(s.assignments.len(), inst.graph.len());
    }
}

#[test]
fn par_valid_on_suite() {
    for inst in mini_suite() {
        let cfg = SchedulerConfig {
            max_iterations: 4,
            time_budget: Duration::from_secs(30),
            ..Default::default()
        };
        let s = PaRScheduler::new(cfg).schedule(&inst).expect("schedulable");
        validate_schedule(&inst, &s).expect("valid");
    }
}

#[test]
fn is1_valid_on_suite() {
    let isk = IsKScheduler::with_k(1);
    for inst in mini_suite() {
        let s = isk.schedule(&inst).expect("schedulable");
        validate_schedule(&inst, &s).expect("valid");
    }
}

#[test]
fn is3_valid_on_medium_instances() {
    let isk = IsKScheduler::with_k(3);
    for inst in mini_suite().into_iter().take(4) {
        let s = isk.schedule(&inst).expect("schedulable");
        validate_schedule(&inst, &s).expect("valid");
    }
}

#[test]
fn heft_valid_on_suite() {
    let heft = HeftScheduler::new();
    for inst in mini_suite() {
        let s = heft.schedule(&inst).expect("schedulable");
        validate_schedule(&inst, &s).expect("valid");
    }
}

#[test]
fn asap_replay_never_beats_recorded_makespan_is_consistent() {
    // The ASAP re-execution of a schedule's decisions can only tighten idle
    // gaps: replay makespan <= recorded makespan, for every scheduler.
    let pa = PaScheduler::new(SchedulerConfig::default());
    let isk = IsKScheduler::with_k(1);
    let heft = HeftScheduler::new();
    for inst in mini_suite() {
        for s in [
            pa.schedule(&inst).unwrap(),
            isk.schedule(&inst).unwrap(),
            heft.schedule(&inst).unwrap(),
        ] {
            let asap = execute_asap(&inst, &s).expect("consistent decisions");
            assert!(
                asap.makespan <= s.makespan(),
                "ASAP replay must not be slower ({} > {}) on {}",
                asap.makespan,
                s.makespan(),
                inst.name
            );
        }
    }
}

#[test]
fn stats_are_coherent_with_schedules() {
    let pa = PaScheduler::new(SchedulerConfig::default());
    for inst in mini_suite() {
        let s = pa.schedule(&inst).unwrap();
        let st = schedule_stats(&inst, &s);
        assert_eq!(st.makespan, s.makespan());
        assert_eq!(st.hw_tasks + st.sw_tasks, inst.graph.len());
        assert_eq!(st.num_regions, s.regions.len());
        assert_eq!(st.num_reconfigurations, s.reconfigurations.len());
        assert!(st.fabric_claimed_ppm <= 1_000_000);
    }
}

#[test]
fn pa_makespan_is_deterministic_across_processes_shape() {
    // Golden value: locks generator + scheduler determinism. If this fails
    // after an intentional algorithm change, update the constant.
    let inst = SuiteConfig {
        groups: vec![30],
        graphs_per_group: 1,
        seed: 123,
    }
    .generate(&Architecture::zedboard())
    .remove(0)
    .remove(0);
    let a = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap()
        .makespan();
    let b = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap()
        .makespan();
    assert_eq!(a, b);
    assert!(a > 0);
}
