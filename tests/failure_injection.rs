//! Failure-injection and edge-case integration tests: degenerate graphs,
//! starved architectures, zero durations, oversized implementations.

use prfpga::model::Device;
use prfpga::prelude::*;

fn pa() -> PaScheduler {
    PaScheduler::new(SchedulerConfig::default())
}

fn tiny_arch(clb: u64) -> Architecture {
    Architecture::new(1, Device::tiny_test(ResourceVec::new(clb, 10, 10), 1))
}

#[test]
fn single_task_instance() {
    let mut impls = ImplPool::new();
    let sw = impls.add(Implementation::software("sw", 42));
    let mut g = TaskGraph::new();
    g.add_task("only", vec![sw]);
    let inst = ProblemInstance::new("single", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert_eq!(s.makespan(), 42);
    assert!(s.regions.is_empty());
}

#[test]
fn empty_instance() {
    let inst =
        ProblemInstance::new("empty", tiny_arch(10), TaskGraph::new(), ImplPool::new()).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert_eq!(s.makespan(), 0);
}

#[test]
fn software_only_application_on_one_core() {
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    for i in 0..20u64 {
        let sw = impls.add(Implementation::software(format!("s{i}"), 10 + i));
        g.add_task(format!("t{i}"), vec![sw]);
    }
    let inst = ProblemInstance::new("swonly", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    // Everything serializes on the single core.
    let total: Time = (0..20u64).map(|i| 10 + i).sum();
    assert_eq!(s.makespan(), total);
}

#[test]
fn wide_fanout_exceeding_fabric() {
    // 60 parallel hardware-capable tasks on a fabric that fits ~3 regions:
    // most fall back to software; the schedule must stay valid.
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    let src_sw = impls.add(Implementation::software("src", 5));
    let src = g.add_task("src", vec![src_sw]);
    for i in 0..60u64 {
        let sw = impls.add(Implementation::software(format!("s{i}"), 500));
        let hw = impls.add(Implementation::hardware(
            format!("h{i}"),
            50,
            ResourceVec::new(3, 1, 1),
        ));
        let t = g.add_task(format!("t{i}"), vec![sw, hw]);
        g.add_edge(src, t);
    }
    let inst = ProblemInstance::new("fanout", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert!(s
        .total_region_resources()
        .fits_in(&inst.architecture.device.max_res));
    assert!(s.hardware_task_count() < 61);
}

#[test]
fn long_chain_with_region_reuse() {
    // A 50-deep chain of hardware tasks with capacity for one region:
    // the region is reused along the chain with reconfigurations, or tasks
    // fall back to software — either way, valid and finite.
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    let mut prev: Option<TaskId> = None;
    for i in 0..50u64 {
        let sw = impls.add(Implementation::software(format!("s{i}"), 400));
        let hw = impls.add(Implementation::hardware(
            format!("h{i}"),
            40,
            ResourceVec::new(10, 2, 2),
        ));
        let t = g.add_task(format!("t{i}"), vec![sw, hw]);
        if let Some(p) = prev {
            g.add_edge(p, t);
        }
        prev = Some(t);
    }
    let inst = ProblemInstance::new("chain", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
}

#[test]
fn zero_duration_tasks() {
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    let a_sw = impls.add(Implementation::software("a", 0));
    let b_sw = impls.add(Implementation::software("b", 10));
    let a = g.add_task("a", vec![a_sw]);
    let b = g.add_task("b", vec![b_sw]);
    g.add_edge(a, b);
    let inst = ProblemInstance::new("zero", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert_eq!(s.makespan(), 10);
}

#[test]
fn hw_impl_exactly_filling_the_device() {
    let mut impls = ImplPool::new();
    let sw = impls.add(Implementation::software("sw", 1000));
    let hw = impls.add(Implementation::hardware(
        "huge",
        10,
        ResourceVec::new(10, 10, 10),
    ));
    let mut g = TaskGraph::new();
    g.add_task("t", vec![sw, hw]);
    let inst = ProblemInstance::new("fill", tiny_arch(10), g, impls).unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    assert_eq!(s.makespan(), 10, "the exactly-fitting accelerator is used");
}

#[test]
fn disconnected_components() {
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    for c in 0..3 {
        let mut prev: Option<TaskId> = None;
        for i in 0..4u64 {
            let sw = impls.add(Implementation::software(format!("c{c}s{i}"), 20));
            let t = g.add_task(format!("c{c}t{i}"), vec![sw]);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
    }
    let inst = ProblemInstance::new(
        "disconnected",
        Architecture::new(3, Device::tiny_test(ResourceVec::new(1, 0, 0), 1)),
        g,
        impls,
    )
    .unwrap();
    let s = pa().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).unwrap();
    // Three cores, three independent chains of 80 ticks each.
    assert_eq!(s.makespan(), 80);
}

#[test]
fn cyclic_graph_is_rejected() {
    let mut impls = ImplPool::new();
    let a_sw = impls.add(Implementation::software("a", 1));
    let b_sw = impls.add(Implementation::software("b", 1));
    let mut g = TaskGraph::new();
    let a = g.add_task("a", vec![a_sw]);
    let b = g.add_task("b", vec![b_sw]);
    g.add_edge(a, b);
    g.add_edge(b, a);
    let inst = ProblemInstance {
        name: "cycle".into(),
        architecture: tiny_arch(10),
        graph: g,
        impls,
    };
    assert!(pa().schedule(&inst).is_err());
    assert!(IsKScheduler::with_k(1).schedule(&inst).is_err());
    assert!(HeftScheduler::new().schedule(&inst).is_err());
}

#[test]
fn baselines_survive_the_edge_cases_too() {
    // Reuse the wide fan-out instance for IS-1 and HEFT.
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    let src_sw = impls.add(Implementation::software("src", 5));
    let src = g.add_task("src", vec![src_sw]);
    for i in 0..30u64 {
        let sw = impls.add(Implementation::software(format!("s{i}"), 500));
        let hw = impls.add(Implementation::hardware(
            format!("h{i}"),
            50,
            ResourceVec::new(3, 1, 1),
        ));
        let t = g.add_task(format!("t{i}"), vec![sw, hw]);
        g.add_edge(src, t);
    }
    let inst = ProblemInstance::new("fanout2", tiny_arch(10), g, impls).unwrap();
    for s in [
        IsKScheduler::with_k(1).schedule(&inst).unwrap(),
        IsKScheduler::with_k(4).schedule(&inst).unwrap(),
        HeftScheduler::new().schedule(&inst).unwrap(),
    ] {
        validate_schedule(&inst, &s).unwrap();
    }
}
