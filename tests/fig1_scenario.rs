//! The paper's Figure-1 anecdote as an executable test: selecting the
//! resource-efficient implementation beats the locally-fastest one.

use prfpga::model::Device;
use prfpga::prelude::*;

/// Builds the Figure-1 instance: t1 -> {t2, t3}; t1 has a fast/huge and a
/// slower/small hardware variant; the fabric fits either one huge region
/// or three small ones.
fn figure1() -> (ProblemInstance, ImplId, ImplId) {
    let device = Device::tiny_test(ResourceVec::new(1000, 100, 100), 1);
    let arch = Architecture::new(1, device);
    let mut impls = ImplPool::new();
    let t1_sw = impls.add(Implementation::software("t1_sw", 20_000));
    let t1_fast = impls.add(Implementation::hardware(
        "t1_fast",
        1_000,
        ResourceVec::new(800, 80, 80),
    ));
    let t1_eff = impls.add(Implementation::hardware(
        "t1_eff",
        1_500,
        ResourceVec::new(250, 20, 20),
    ));
    let t2_sw = impls.add(Implementation::software("t2_sw", 20_000));
    let t2_hw = impls.add(Implementation::hardware(
        "t2_hw",
        2_000,
        ResourceVec::new(300, 20, 20),
    ));
    let t3_sw = impls.add(Implementation::software("t3_sw", 20_000));
    let t3_hw = impls.add(Implementation::hardware(
        "t3_hw",
        2_200,
        ResourceVec::new(300, 20, 20),
    ));
    let mut graph = TaskGraph::new();
    let t1 = graph.add_task("t1", vec![t1_sw, t1_fast, t1_eff]);
    let t2 = graph.add_task("t2", vec![t2_sw, t2_hw]);
    let t3 = graph.add_task("t3", vec![t3_sw, t3_hw]);
    graph.add_edge(t1, t2);
    graph.add_edge(t1, t3);
    let inst = ProblemInstance::new("fig1", arch, graph, impls).unwrap();
    (inst, t1_fast, t1_eff)
}

#[test]
fn pa_selects_the_resource_efficient_variant() {
    let (inst, _fast, eff) = figure1();
    let s = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    validate_schedule(&inst, &s).expect("valid");
    assert_eq!(s.assignment(TaskId(0)).impl_id, eff);
}

#[test]
fn efficient_variant_enables_parallel_downstream_tasks() {
    let (inst, _, _) = figure1();
    let s = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    // t2 and t3 run in hardware and overlap in time.
    let a2 = s.assignment(TaskId(1));
    let a3 = s.assignment(TaskId(2));
    assert!(matches!(a2.placement, Placement::Region(_)));
    assert!(matches!(a3.placement, Placement::Region(_)));
    assert!(
        a2.start < a3.end && a3.start < a2.end,
        "t2 {a2:?} and t3 {a3:?} should overlap"
    );
}

#[test]
fn forcing_the_fast_variant_worsens_the_schedule() {
    let (inst, fast, eff) = figure1();
    let good = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap()
        .makespan();

    let mut forced = inst.clone();
    forced.graph.tasks[0].impls.retain(|&i| i != eff);
    assert!(forced.graph.tasks[0].impls.contains(&fast));
    let bad = PaScheduler::new(SchedulerConfig::default())
        .schedule(&forced)
        .unwrap()
        .makespan();
    assert!(
        bad > good,
        "fast/huge variant ({bad}) must lose to resource-efficient one ({good})"
    );
}

#[test]
fn time_only_cost_policy_reproduces_the_greedy_trap() {
    // With the time-only ablation of eq. 3 the scheduler initially picks
    // the fast/huge variant for t1 (the §IV anecdote); the huge region then
    // starves the rest of the fabric and the schedule ends up strictly
    // worse than with the full cost metric.
    let (inst, _fast, eff) = figure1();
    let full = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    let cfg = SchedulerConfig {
        cost_policy: CostPolicy::TimeOnly,
        ..Default::default()
    };
    let greedy = PaScheduler::new(cfg).schedule(&inst).unwrap();
    validate_schedule(&inst, &greedy).expect("valid");
    assert_ne!(
        greedy.assignment(TaskId(0)).impl_id,
        eff,
        "time-only selection must not pick the efficient variant"
    );
    assert!(
        greedy.makespan() > full.makespan(),
        "greedy trap: {} should exceed {}",
        greedy.makespan(),
        full.makespan()
    );
}

/// HEFT on the same scenario, pinned: the upward-rank list scheduler has
/// no resource-efficiency notion, so it takes the Figure-1 bait — the
/// fast/huge `t1_fast` variant fills the fabric with one 800-CLB region
/// and t2/t3 must then be *serialized* through it with a reconfiguration
/// before each. The pinned numbers double as the only dedicated HEFT
/// fixture coverage: any behavioural drift in heft.rs shows up here first.
#[test]
fn heft_takes_the_greedy_trap_and_is_pinned() {
    let (inst, fast, _eff) = figure1();
    let s = HeftScheduler::new().schedule(&inst).unwrap();
    validate_schedule(&inst, &s).expect("valid");
    validate_schedule_sweep(&inst, &s).expect("sweep-valid");

    // Greedy implementation choice and the resulting single huge region.
    assert_eq!(s.assignment(TaskId(0)).impl_id, fast);
    assert_eq!(s.regions.len(), 1);
    assert_eq!(s.regions[0].res, ResourceVec::new(800, 80, 80));

    // t1 runs immediately; t2 and t3 each wait for a reconfiguration of
    // the single region, so they cannot overlap (contrast with PA, where
    // the efficient variant lets them run in parallel).
    assert_eq!(
        (s.assignment(TaskId(0)).start, s.assignment(TaskId(0)).end),
        (0, 1000)
    );
    let a2 = s.assignment(TaskId(1));
    let a3 = s.assignment(TaskId(2));
    assert!(
        a2.end <= a3.start || a3.end <= a2.start,
        "t2 {a2:?} and t3 {a3:?} must be serialized through the one region"
    );
    assert_eq!(s.reconfigurations.len(), 2);
    assert_eq!(s.makespan(), 7120);

    // And the head-to-head that motivates the paper: PA beats HEFT here.
    let pa = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .unwrap();
    assert!(
        pa.makespan() < s.makespan(),
        "PA ({}) must beat HEFT ({}) on Figure 1",
        pa.makespan(),
        s.makespan()
    );
}
