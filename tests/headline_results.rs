//! Locks the reproduction's headline qualitative results as executable
//! assertions. Everything here is fully deterministic (fixed seeds,
//! deterministic schedulers), so a failure means an algorithm change moved
//! a paper-level conclusion — which should be a conscious decision.

use prfpga::baseline::IsKConfig;
use prfpga::gen::SuiteConfig;
use prfpga::prelude::*;

/// Mini-suite in the contention regime where the paper's effect lives.
///
/// Four graphs per group: the per-group effect is a *mean* comparison, and
/// with only two samples a single adversarial instance can flip a group's
/// sign (observed at 50 tasks). Four keeps the suite fast while making the
/// group means representative of the distribution.
fn groups() -> Vec<Vec<ProblemInstance>> {
    SuiteConfig {
        groups: vec![30, 50, 70],
        graphs_per_group: 4,
        seed: 0x5EED_2016,
    }
    .generate(&Architecture::zedboard_pr())
}

fn mean_makespan<F: Fn(&ProblemInstance) -> Schedule>(group: &[ProblemInstance], f: F) -> f64 {
    group
        .iter()
        .map(|inst| {
            let s = f(inst);
            validate_schedule(inst, &s).expect("valid");
            s.makespan() as f64
        })
        .sum::<f64>()
        / group.len() as f64
}

/// Figure 3's sign: PA beats IS-1 on average in every medium/large group.
#[test]
fn pa_beats_is1_at_medium_and_large_sizes() {
    let pa = PaScheduler::new(SchedulerConfig::default());
    let is1 = IsKScheduler::new(IsKConfig::is1());
    for group in groups() {
        let n = group[0].graph.len();
        let pa_mean = mean_makespan(&group, |i| pa.schedule(i).unwrap());
        let is1_mean = mean_makespan(&group, |i| is1.schedule(i).unwrap());
        assert!(
            pa_mean < is1_mean,
            "{n} tasks: PA mean {pa_mean:.0} must beat IS-1 mean {is1_mean:.0}"
        );
    }
}

/// PA-R with a fixed iteration budget never loses to the deterministic PA
/// ordering by much, and improves on it on average (it explores a superset
/// of orderings and keeps the best feasible one).
///
/// Release builds only: the floorplanner's wall-clock budget interacts
/// with unoptimized code in debug builds, turning otherwise-deterministic
/// feasibility answers into timeouts and perturbing the comparison.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "floorplan wall-clock budget is unreliable in debug builds"
)]
fn par_improves_on_pa_on_average() {
    let pa = PaScheduler::new(SchedulerConfig::default());
    let par = PaRScheduler::new(SchedulerConfig {
        max_iterations: 12,
        time_budget: std::time::Duration::from_secs(120),
        ..Default::default()
    });
    let mut pa_total = 0.0;
    let mut par_total = 0.0;
    for group in groups() {
        pa_total += mean_makespan(&group, |i| pa.schedule(i).unwrap());
        par_total += mean_makespan(&group, |i| par.schedule(i).unwrap());
    }
    assert!(
        par_total <= pa_total * 1.02,
        "PA-R ({par_total:.0}) should not lose to PA ({pa_total:.0}) beyond noise"
    );
}

/// The PA schedule is robust to reconfiguration-bandwidth degradation
/// while IS-1 (which leans on reconfiguration-heavy region queueing)
/// degrades much faster — the mechanism behind the paper's premise.
#[test]
fn pa_is_more_robust_to_slow_reconfiguration_than_is1() {
    let suite = SuiteConfig {
        groups: vec![60],
        graphs_per_group: 2,
        seed: 0x5EED_2016,
    };
    let fast = suite.generate(&Architecture::zedboard()); // 400 MB/s ICAP
    let slow = suite.generate(&Architecture::zedboard_pr()); // 50 MB/s
    let pa = PaScheduler::new(SchedulerConfig::default());
    let is1 = IsKScheduler::new(IsKConfig::is1());

    let pa_fast = mean_makespan(&fast[0], |i| pa.schedule(i).unwrap());
    let pa_slow = mean_makespan(&slow[0], |i| pa.schedule(i).unwrap());
    let is1_fast = mean_makespan(&fast[0], |i| is1.schedule(i).unwrap());
    let is1_slow = mean_makespan(&slow[0], |i| is1.schedule(i).unwrap());

    let pa_degradation = pa_slow / pa_fast;
    let is1_degradation = is1_slow / is1_fast;
    assert!(
        pa_degradation < is1_degradation,
        "8x slower reconfiguration must hurt IS-1 (x{is1_degradation:.2}) more than PA (x{pa_degradation:.2})"
    );
}

/// The generated suite sits in the paper's operating regime: reconfiguring
/// a typical region costs the same order of magnitude as executing a task.
#[test]
fn suite_reconfiguration_cost_is_comparable_to_task_time() {
    let group = &groups()[0];
    let inst = &group[0];
    let device = &inst.architecture.device;
    // Mean selected-implementation-sized reconfiguration vs mean HW time.
    let mut rec_sum = 0u64;
    let mut hw_sum = 0u64;
    let mut n = 0u64;
    for t in inst.graph.task_ids() {
        if let Some(i) = inst.hw_impls(t).next() {
            let imp = inst.impls.get(i);
            rec_sum += device.reconf_time(&imp.resources());
            hw_sum += imp.time;
            n += 1;
        }
    }
    let rec_mean = rec_sum / n;
    let hw_mean = hw_sum / n;
    assert!(
        rec_mean * 10 > hw_mean && rec_mean < hw_mean * 10,
        "reconfiguration ({rec_mean}) and execution ({hw_mean}) must be within 10x"
    );
}
