//! The shipped instance fixtures in `instances/` load, validate, and
//! schedule — guarding both the files and JSON format stability.

use prfpga::prelude::*;

fn fixtures() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("instances");
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .expect("instances/ directory ships with the repo")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    out.sort();
    assert!(out.len() >= 5, "expected the documented fixture set");
    out
}

#[test]
fn fixtures_load_and_validate() {
    for path in fixtures() {
        let inst =
            ProblemInstance::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        inst.validate().unwrap();
    }
}

#[test]
fn fixtures_schedule_with_pa() {
    let pa = PaScheduler::new(SchedulerConfig::default());
    for path in fixtures() {
        let inst = ProblemInstance::load(&path).unwrap();
        let s = pa.schedule(&inst).unwrap();
        validate_schedule(&inst, &s).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(s.makespan() > 0);
    }
}

#[test]
fn comm_fixture_really_carries_costs() {
    let path = fixtures()
        .into_iter()
        .find(|p| p.to_string_lossy().contains("comm"))
        .expect("comm fixture present");
    let inst = ProblemInstance::load(&path).unwrap();
    assert!(inst.graph.edge_costs.iter().any(|&c| c > 0));
}
