//! Tests of the multiple-reconfiguration-controllers generalization
//! (the model of the paper's ref. \[8\]; the paper itself fixes k = 1).

use prfpga::baseline::IsKConfig;
use prfpga::gen::{GraphConfig, TaskGraphGenerator};
use prfpga::model::Device;
use prfpga::prelude::*;

/// Two independent two-task chains, each in its own region: with one
/// controller the two reconfigurations serialize; with two they overlap.
fn contention_instance(controllers: usize) -> ProblemInstance {
    let mut impls = ImplPool::new();
    let mut g = TaskGraph::new();
    let mut hw_ids = Vec::new();
    for i in 0..4 {
        let sw = impls.add(Implementation::software(format!("s{i}"), 100_000));
        let hw = impls.add(Implementation::hardware(
            format!("h{i}"),
            100,
            ResourceVec::new(50, 0, 0),
        ));
        hw_ids.push(hw);
        g.add_task(format!("t{i}"), vec![sw, hw]);
    }
    g.add_edge(TaskId(0), TaskId(1));
    g.add_edge(TaskId(2), TaskId(3));
    ProblemInstance::new(
        format!("ctrl{controllers}"),
        Architecture::new(1, Device::tiny_test(ResourceVec::new(100, 0, 0), 1))
            .with_reconfig_controllers(controllers),
        g,
        impls,
    )
    .unwrap()
}

#[test]
fn second_controller_removes_contention_for_pa() {
    // Capacity for two 50-CLB regions: each chain gets one, each chain
    // needs one reconfiguration (50 ticks at rec_freq 1), both become
    // ready at t=100.
    let one = PaScheduler::new(SchedulerConfig::default())
        .schedule(&contention_instance(1))
        .unwrap();
    let two = PaScheduler::new(SchedulerConfig::default())
        .schedule(&contention_instance(2))
        .unwrap();
    validate_schedule(&contention_instance(1), &one).unwrap();
    validate_schedule(&contention_instance(2), &two).unwrap();
    assert!(
        two.makespan() < one.makespan(),
        "parallel reconfigurations must shorten the schedule ({} vs {})",
        two.makespan(),
        one.makespan()
    );
    // With one controller the second chain waits out the first
    // reconfiguration: 100 + 50 (wait) + 50 + 100.
    assert_eq!(one.makespan(), 300);
    // With two controllers both reconfigure concurrently: 100 + 50 + 100.
    assert_eq!(two.makespan(), 250);
}

#[test]
fn validator_enforces_the_controller_count() {
    let inst1 = contention_instance(1);
    let inst2 = contention_instance(2);
    // A schedule computed for 2 controllers overlaps reconfigurations;
    // the 1-controller validator must reject it.
    let two = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst2)
        .unwrap();
    assert!(validate_schedule(&inst2, &two).is_ok());
    assert!(
        matches!(
            validate_schedule(&inst1, &two),
            Err(prfpga::sim::ValidationError::ReconfiguratorContention)
        ),
        "overlapping reconfigurations are contention under k = 1"
    );
}

#[test]
fn baselines_exploit_extra_controllers() {
    for seed in [3u64, 4] {
        let base = TaskGraphGenerator::new(seed).generate(
            "mc",
            &GraphConfig::standard(30),
            Architecture::zedboard_pr(),
        );
        let mut multi = base.clone();
        multi.architecture.num_reconfig_controllers = 2;

        let is1 = IsKScheduler::new(IsKConfig::is1());
        let s1 = is1.schedule(&base).unwrap();
        let s2 = is1.schedule(&multi).unwrap();
        validate_schedule(&base, &s1).unwrap();
        validate_schedule(&multi, &s2).unwrap();
        assert!(
            s2.makespan() <= s1.makespan(),
            "a second controller can only help IS-1 ({} vs {})",
            s2.makespan(),
            s1.makespan()
        );

        let heft = HeftScheduler::new();
        let h2 = heft.schedule(&multi).unwrap();
        validate_schedule(&multi, &h2).unwrap();
    }
}

#[test]
fn default_instances_keep_one_controller() {
    let inst = TaskGraphGenerator::new(1).generate(
        "def",
        &GraphConfig::standard(10),
        Architecture::zedboard_pr(),
    );
    assert_eq!(inst.architecture.num_reconfig_controllers, 1);
    // Serde default on legacy JSON.
    let mut json: serde_json::Value = serde_json::from_str(&inst.to_json()).unwrap();
    json["architecture"]
        .as_object_mut()
        .unwrap()
        .remove("num_reconfig_controllers");
    let back = ProblemInstance::from_json(&json.to_string()).unwrap();
    assert_eq!(back.architecture.num_reconfig_controllers, 1);
}
