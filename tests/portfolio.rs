//! Portfolio-level properties:
//!
//! * with an effectively infinite deadline the race is just "run every
//!   member and keep the best": the winner's makespan must equal the best
//!   standalone member run with the same seeds and configuration;
//! * under *any* deadline — including zero — the portfolio returns a
//!   schedule that passes the independent sweep validator, never an error;
//! * the acceptance scenario from the issue: a 120-task instance under a
//!   50 ms deadline still yields a validated schedule and a named winner.

use std::time::Duration;

use prfpga::baseline::{IsKConfig, IsKScheduler};
use prfpga::floorplan::FloorplannerConfig;
use prfpga::portfolio::{Member, Portfolio, PortfolioConfig};
use prfpga::prelude::*;

fn instance(tasks: usize, seed: u64) -> ProblemInstance {
    prfpga::gen::TaskGraphGenerator::new(seed).generate(
        &format!("portfolio_t{tasks}_s{seed}"),
        &prfpga::gen::GraphConfig::standard(tasks),
        Architecture::zedboard_pr(),
    )
}

/// Deterministic scheduler config: iteration-capped PA-R and a pinned
/// floorplanner (huge time limit, small candidate cap) so repeated runs
/// are byte-identical and never depend on wall-clock solver timeouts.
fn pinned_config() -> SchedulerConfig {
    SchedulerConfig {
        max_iterations: 4,
        time_budget: Duration::from_secs(600),
        floorplan: FloorplannerConfig {
            time_limit: Duration::from_secs(600),
            max_candidates_per_region: 8,
        },
        ..Default::default()
    }
}

/// Mirrors how the portfolio derives its IS-k member configuration from
/// the shared scheduler config.
fn isk_config(k: usize, cfg: &SchedulerConfig) -> IsKConfig {
    IsKConfig {
        k,
        floorplan: cfg.floorplan.clone(),
        shrink_factor: cfg.shrink_factor,
        max_attempts: cfg.max_attempts,
        ..IsKConfig::is5()
    }
}

#[test]
fn infinite_deadline_winner_equals_best_standalone_member() {
    let cfg = pinned_config();
    for (tasks, seed) in [(15usize, 3u64), (20, 8), (25, 21)] {
        let inst = instance(tasks, seed);
        let r = Portfolio::new(PortfolioConfig {
            deadline: Some(Duration::from_secs(3600)),
            sched: cfg.clone(),
            ..Default::default()
        })
        .run(&inst)
        .unwrap();
        validate_schedule_sweep(&inst, &r.schedule).expect("valid winner");
        assert!(!r.degraded, "nothing degrades under an hour-long deadline");

        let standalone = [
            PaScheduler::new(cfg.clone()).schedule(&inst).unwrap(),
            PaRScheduler::new(cfg.clone()).schedule(&inst).unwrap(),
            IsKScheduler::new(isk_config(1, &cfg))
                .schedule(&inst)
                .unwrap(),
        ];
        let best = standalone.iter().map(Schedule::makespan).min().unwrap();
        assert_eq!(
            r.schedule.makespan(),
            best,
            "{}: winner {} vs standalone best",
            inst.name,
            r.winner
        );
    }
}

#[test]
fn every_deadline_yields_a_validated_schedule() {
    let inst = instance(25, 17);
    for ms in [0u64, 1, 5, 50] {
        let r = Portfolio::new(PortfolioConfig {
            deadline: Some(Duration::from_millis(ms)),
            sched: pinned_config(),
            ..Default::default()
        })
        .run(&inst)
        .unwrap_or_else(|e| panic!("deadline {ms}ms: portfolio errored: {e}"));
        validate_schedule_sweep(&inst, &r.schedule)
            .unwrap_or_else(|e| panic!("deadline {ms}ms: invalid schedule: {e:?}"));
        assert!(r.schedule.makespan() > 0, "deadline {ms}ms");
    }
}

/// The issue's acceptance scenario: 120 tasks, 50 ms — a budget far too
/// small for a full search in a debug build — must still produce a
/// validated (possibly degraded) schedule with a named winner, not an
/// error.
#[test]
fn acceptance_120_tasks_under_50ms_deadline() {
    let inst = instance(120, 9);
    let r = Portfolio::new(PortfolioConfig {
        deadline: Some(Duration::from_millis(50)),
        sched: SchedulerConfig::default(),
        ..Default::default()
    })
    .run(&inst)
    .expect("portfolio answers under any deadline");
    validate_schedule_sweep(&inst, &r.schedule).expect("valid schedule");
    assert!(r.schedule.makespan() > 0);
    // The winner is one of the configured members or the HEFT last resort.
    assert!(
        matches!(
            r.winner,
            Member::Pa | Member::PaR | Member::IsK(_) | Member::Heft
        ),
        "unexpected winner {}",
        r.winner
    );
    assert_eq!(r.reports.len(), 3, "one report per default member");
    // The report renders without panicking and names the winner.
    assert!(r.render_report().contains("winner"));
}
