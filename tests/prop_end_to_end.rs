//! Property-based end-to-end tests: for arbitrary random instances, every
//! scheduler's output passes the independent validator — the workspace's
//! master invariant.

use proptest::prelude::*;

use prfpga::model::Device;
use prfpga::prelude::*;

/// Strategy: a small random instance with arbitrary DAG shape (forward
/// edges only), 1-3 cores, a randomly sized fabric, and per-task random
/// implementation sets (always >= 1 software implementation).
fn arb_instance() -> impl Strategy<Value = ProblemInstance> {
    let task_count = 1usize..12;
    task_count.prop_flat_map(|n| {
        let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..n * 2);
        let impls_per_task = proptest::collection::vec(
            (
                1u64..2000,                                                       // software time
                proptest::option::of((1u64..500, 0u64..900, 0u64..40, 0u64..40)), // optional hw variant
                proptest::option::of((1u64..800, 0u64..400, 0u64..20, 0u64..20)), // second optional hw
            ),
            n,
        );
        let cores = 1usize..4;
        let fabric = (0u64..1200, 0u64..60, 0u64..60);
        (Just(n), edges, impls_per_task, cores, fabric).prop_map(
            |(_n, edges, impl_specs, cores, fabric)| {
                let device = Device::tiny_test(ResourceVec::new(fabric.0, fabric.1, fabric.2), 7);
                let cap = device.max_res;
                let mut impls = ImplPool::new();
                let mut graph = TaskGraph::new();
                for (i, (sw_t, hw1, hw2)) in impl_specs.into_iter().enumerate() {
                    let mut ids = vec![impls.add(Implementation::software(format!("s{i}"), sw_t))];
                    for (k, hw) in [hw1, hw2].into_iter().flatten().enumerate() {
                        let res = ResourceVec::new(hw.1, hw.2, hw.3);
                        if res.fits_in(&cap) && !res.is_zero() {
                            ids.push(impls.add(Implementation::hardware(
                                format!("h{i}_{k}"),
                                hw.0,
                                res,
                            )));
                        }
                    }
                    graph.add_task(format!("t{i}"), ids);
                }
                for (a, b) in edges {
                    let (lo, hi) = (a.min(b), a.max(b));
                    if lo != hi {
                        graph.add_edge(TaskId(lo as u32), TaskId(hi as u32));
                    }
                }
                ProblemInstance::new("prop", Architecture::new(cores, device), graph, impls)
                    .expect("constructed valid")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pa_schedules_are_always_valid(inst in arb_instance()) {
        let s = PaScheduler::new(SchedulerConfig::default()).schedule(&inst).unwrap();
        prop_assert!(validate_schedule(&inst, &s).is_ok(),
            "PA produced invalid schedule: {:?}", validate_schedule(&inst, &s));
    }

    #[test]
    fn par_schedules_are_always_valid(inst in arb_instance(), seed in 0u64..1000) {
        let cfg = SchedulerConfig {
            max_iterations: 3,
            seed,
            time_budget: std::time::Duration::from_secs(10),
            ..Default::default()
        };
        let s = PaRScheduler::new(cfg).schedule(&inst).unwrap();
        prop_assert!(validate_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn is1_schedules_are_always_valid(inst in arb_instance()) {
        let s = IsKScheduler::with_k(1).schedule(&inst).unwrap();
        prop_assert!(validate_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn is2_schedules_are_always_valid(inst in arb_instance()) {
        let s = IsKScheduler::with_k(2).schedule(&inst).unwrap();
        prop_assert!(validate_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn heft_schedules_are_always_valid(inst in arb_instance()) {
        let s = HeftScheduler::new().schedule(&inst).unwrap();
        prop_assert!(validate_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn asap_replay_is_consistent(inst in arb_instance()) {
        let s = PaScheduler::new(SchedulerConfig::default()).schedule(&inst).unwrap();
        let asap = prfpga::sim::execute_asap(&inst, &s).expect("consistent");
        prop_assert!(asap.makespan <= s.makespan());
    }

    #[test]
    fn instances_roundtrip_through_json(inst in arb_instance()) {
        let json = inst.to_json();
        let back = ProblemInstance::from_json(&json).unwrap();
        prop_assert_eq!(inst, back);
    }
}
