//! Differential oracles for the online repair engine.
//!
//! A seeded corpus of event traces is replayed against committed PA
//! schedules, and every repair is checked three ways:
//!
//! * **validity** — after *every* event, the repaired schedule passes the
//!   independent sweep-line validator against the revised instance;
//! * **exactness** — a trace of nothing but exactly-on-schedule finishes
//!   leaves the schedule byte-identical (the repair engine only reacts to
//!   deviations);
//! * **quality** — after a full perturbation trace, the repaired makespan
//!   stays within a pinned bound of what the batch pipeline produces when
//!   re-solving the revised instance from scratch. Delta repair keeps all
//!   placements fixed, so it legitimately trails a full re-plan — but it
//!   must not fall off a cliff.

use prfpga::prelude::*;
use prfpga::sched::RepairStats;

/// Corpus shape: enough seeds to exercise cancels, revisions, arrivals
/// and both early and late finishes, small enough for a debug-build CI
/// step.
const SIZES: [usize; 2] = [30, 60];
const SEEDS: [u64; 3] = [1, 7, 42];

fn committed(tasks: usize, seed: u64) -> (ProblemInstance, Schedule) {
    let inst = TaskGraphGenerator::new(seed).generate(
        &format!("repair_diff_{tasks}_{seed}"),
        &prfpga::gen::GraphConfig::standard(tasks),
        Architecture::zedboard_pr(),
    );
    let schedule = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .expect("generated instances solve");
    (inst, schedule)
}

/// Every repaired schedule passes the sweep-line validator after every
/// single event of every corpus trace — not only at the end, so the
/// first invalid intermediate state names its event.
#[test]
fn every_repair_step_validates() {
    for &tasks in &SIZES {
        for &seed in &SEEDS {
            let (inst, schedule) = committed(tasks, seed);
            let trace = EventTraceGenerator::new(seed ^ 0xE7).generate(
                &inst,
                &schedule,
                &EventConfig::standard(tasks / 2),
            );
            let mut engine =
                RepairEngine::new(inst, schedule, RepairConfig::default()).expect("clean baseline");
            for (i, ev) in trace.events.iter().enumerate() {
                engine
                    .apply(ev)
                    .unwrap_or_else(|e| panic!("{tasks}/{seed}: event {i} ({ev:?}) refused: {e}"));
                validate_schedule_sweep(engine.instance(), engine.schedule()).unwrap_or_else(|e| {
                    panic!("{tasks}/{seed}: invalid schedule after event {i} ({ev:?}): {e:?}")
                });
            }
        }
    }
}

/// An on-time trace is a no-op: the repaired schedule is byte-identical
/// to the committed baseline and no task ever moves.
#[test]
fn on_time_traces_leave_the_schedule_byte_identical() {
    for &tasks in &SIZES {
        for &seed in &SEEDS {
            let (inst, schedule) = committed(tasks, seed);
            let trace = EventTraceGenerator::new(seed).generate(
                &inst,
                &schedule,
                &EventConfig::on_time(tasks),
            );
            assert_eq!(trace.events.len(), tasks, "every task finishes");
            let mut engine = RepairEngine::new(inst, schedule.clone(), RepairConfig::default())
                .expect("clean baseline");
            for ev in &trace.events {
                let out = engine.apply(ev).expect("on-time finishes never fail");
                assert_eq!(
                    out.frontier, 0,
                    "{tasks}/{seed}: on-time finish invalidated"
                );
                assert_eq!(out.moved, 0);
            }
            assert_eq!(
                *engine.schedule(),
                schedule,
                "{tasks}/{seed}: on-time replay must not disturb the schedule"
            );
            let RepairStats {
                moved_tasks,
                recs_replaced,
                full_resolves,
                ..
            } = engine.stats();
            assert_eq!((moved_tasks, recs_replaced, full_resolves), (0, 0, 0));
        }
    }
}

/// After a full standard-mix trace, the delta-repaired makespan stays
/// within a pinned factor of a from-scratch PA re-solve on the revised
/// instance (which may re-place everything). The bound is deliberately
/// loose — fixed placements cost real schedule length under heavy
/// perturbation — but pins the engine against silent quality cliffs.
#[test]
fn repaired_makespan_tracks_the_full_resolve() {
    const BOUND: f64 = 1.5;
    for &tasks in &SIZES {
        for &seed in &SEEDS {
            let (inst, schedule) = committed(tasks, seed);
            let trace = EventTraceGenerator::new(seed ^ 0xBEEF).generate(
                &inst,
                &schedule,
                &EventConfig::standard(tasks / 3),
            );
            let mut engine =
                RepairEngine::new(inst, schedule, RepairConfig::default()).expect("clean baseline");
            for ev in &trace.events {
                engine
                    .apply(ev)
                    .unwrap_or_else(|e| panic!("{tasks}/{seed}: {e}"));
            }
            let repaired = engine.schedule().makespan();
            let resolved = PaScheduler::new(SchedulerConfig::default())
                .schedule(engine.instance())
                .expect("revised instances solve")
                .makespan();
            assert!(
                repaired as f64 <= resolved as f64 * BOUND,
                "{tasks}/{seed}: repaired makespan {repaired} vs re-solve {resolved} exceeds {BOUND}x"
            );
        }
    }
}
