//! Guards the benchmark-suite calibration: the qualitative reproduction in
//! EXPERIMENTS.md depends on the generated workload sitting in the paper's
//! operating regime. If a generator change moves these statistics, the
//! headline comparisons will silently drift — fail here instead.

use prfpga::gen::{instance_stats, SuiteConfig};
use prfpga::prelude::*;

fn sample() -> Vec<ProblemInstance> {
    SuiteConfig {
        groups: vec![20, 60, 100],
        graphs_per_group: 3,
        seed: 0x5EED_2016,
    }
    .generate(&Architecture::zedboard_pr())
    .into_iter()
    .flatten()
    .collect()
}

#[test]
fn suite_shape_matches_the_paper() {
    for inst in sample() {
        // 1 SW + 3 HW implementations per task (§VII-A); shared sets allowed.
        for t in inst.graph.task_ids() {
            assert_eq!(inst.sw_impls(t).count(), 1);
            assert_eq!(inst.hw_impls(t).count(), 3);
        }
        // ZedBoard-like platform.
        assert_eq!(inst.architecture.num_processors, 2);
        assert_eq!(inst.architecture.device.name, "xc7z020");
        assert_eq!(inst.architecture.device.rec_freq, 400);
    }
}

#[test]
fn software_slowdown_band() {
    for inst in sample() {
        let st = instance_stats(&inst);
        assert!(
            st.sw_slowdown_x100 >= 250 && st.sw_slowdown_x100 <= 800,
            "{}: software slowdown {}x100 outside the calibrated band",
            inst.name,
            st.sw_slowdown_x100
        );
    }
}

#[test]
fn parallelism_band() {
    for inst in sample() {
        let st = instance_stats(&inst);
        assert!(
            st.max_parallelism >= 2,
            "{}: layered graphs must expose parallelism",
            inst.name
        );
        assert!(
            (st.avg_parallelism_x100 as f64) >= 150.0,
            "{}: average width {} too serial for the suite",
            inst.name,
            st.avg_parallelism_x100
        );
        assert!(st.depth >= 3, "{}: degenerate depth", inst.name);
    }
}

#[test]
fn fabric_pressure_grows_with_task_count() {
    // The contention story requires small graphs to (nearly) fit and large
    // graphs to over-subscribe the fabric even with the smallest variants.
    let suite = sample();
    let pressure = |name_prefix: &str| -> u64 {
        let matches: Vec<_> = suite
            .iter()
            .filter(|i| i.name.starts_with(name_prefix))
            .collect();
        assert!(!matches.is_empty());
        matches
            .iter()
            .map(|i| instance_stats(i).min_hw_clb_pressure_pm)
            .sum::<u64>()
            / matches.len() as u64
    };
    let p20 = pressure("g20_");
    let p100 = pressure("g100_");
    assert!(
        p20 < p100,
        "pressure must grow with the task count ({p20} vs {p100})"
    );
    assert!(
        p100 > 1000,
        "100-task graphs must over-subscribe the fabric (got {p100} pm)"
    );
    assert!(
        p20 < 1500,
        "20-task graphs should be near or below capacity (got {p20} pm)"
    );
}

#[test]
fn reconfiguration_to_execution_ratio_band() {
    // §I's premise: reconfiguration overhead competes with execution. For
    // the selected-at-cheapest implementations, a region reconfiguration
    // should cost between 20% and 500% of one task execution.
    for inst in sample() {
        let device = &inst.architecture.device;
        let mut ratio_x100_sum = 0u64;
        let mut n = 0u64;
        for t in inst.graph.task_ids() {
            for i in inst.hw_impls(t) {
                let imp = inst.impls.get(i);
                let rec = device.reconf_time(&imp.resources());
                ratio_x100_sum += rec * 100 / imp.time.max(1);
                n += 1;
            }
        }
        let avg = ratio_x100_sum / n;
        assert!(
            (20..=500).contains(&avg),
            "{}: reconf/exec ratio {avg}x100 leaves the paper's regime",
            inst.name
        );
    }
}

#[test]
fn module_sharing_present_in_large_graphs() {
    for inst in sample().iter().filter(|i| i.graph.len() >= 60) {
        let st = instance_stats(inst);
        assert!(
            st.shared_impl_tasks >= 2,
            "{}: §VII-A requires shared implementations",
            inst.name
        );
    }
}
